//! Numeric validation of the synthesis engine: every derived algorithm is
//! executed by the reference evaluator and compared against the
//! `slingen-blas` oracle, across sizes, vector widths, and both loop
//! policies.

use slingen_blas::{testgen, Uplo};
use slingen_ir::structure::StorageHalf;
use slingen_ir::{Expr, OpId, OperandDecl, Program, ProgramBuilder, Properties, Structure};
use slingen_synth::program::eval;
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use std::collections::HashMap;

fn buffers_for(program: &Program) -> HashMap<OpId, Vec<f64>> {
    program
        .operands()
        .iter()
        .enumerate()
        .map(|(i, o)| (OpId(i), vec![0.0; o.shape.rows * o.shape.cols]))
        .collect()
}

fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

const SIZES: [usize; 6] = [1, 2, 3, 4, 6, 12];
const WIDTHS: [usize; 3] = [1, 2, 4];

#[test]
fn potrf_upper_all_policies_and_widths() {
    for &n in &SIZES {
        for &nu in &WIDTHS {
            for policy in Policy::ALL {
                let mut b = ProgramBuilder::new("potrf");
                let s = b.declare(
                    OperandDecl::mat_in("S", n, n)
                        .with_structure(Structure::Symmetric(StorageHalf::Upper))
                        .with_properties(Properties::pd()),
                );
                let u = b.declare(
                    OperandDecl::mat_out("U", n, n)
                        .with_structure(Structure::UpperTriangular)
                        .with_properties(Properties::ns()),
                );
                b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
                let p = b.build().unwrap();
                let mut db = AlgorithmDb::new();
                let basic = synthesize_program(&p, policy, nu, &mut db)
                    .unwrap_or_else(|e| panic!("n={n} nu={nu} {policy}: {e}"));

                let spd = testgen::spd(n, 42 + n as u64);
                let mut bufs = buffers_for(&p);
                bufs.insert(s, spd.as_slice().to_vec());
                eval::run(&p, &basic, &mut bufs);

                let mut expect = spd.as_slice().to_vec();
                slingen_blas::dpotrf(Uplo::Upper, n, &mut expect, n);
                // compare the upper triangle (the strict lower half of the
                // output buffer is unspecified, as in LAPACK)
                let got = &bufs[&u];
                for i in 0..n {
                    for j in i..n {
                        assert!(
                            (got[i * n + j] - expect[i * n + j]).abs() < 1e-9,
                            "n={n} nu={nu} {policy} at ({i},{j}): {} vs {}\n{}",
                            got[i * n + j],
                            expect[i * n + j],
                            basic.render(&p)
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn potrf_lower_variant() {
    for &n in &[2usize, 5, 8] {
        for policy in Policy::ALL {
            let mut b = ProgramBuilder::new("potrf_l");
            let k = b.declare(
                OperandDecl::mat_in("K", n, n)
                    .with_structure(Structure::Symmetric(StorageHalf::Lower))
                    .with_properties(Properties::pd()),
            );
            let l = b.declare(
                OperandDecl::mat_out("L", n, n)
                    .with_structure(Structure::LowerTriangular)
                    .with_properties(Properties::ns()),
            );
            b.equation(Expr::op(l).mul(Expr::op(l).t()), Expr::op(k));
            let p = b.build().unwrap();
            let mut db = AlgorithmDb::new();
            let basic = synthesize_program(&p, policy, 4, &mut db).unwrap();

            let spd = testgen::spd(n, 77);
            let mut bufs = buffers_for(&p);
            bufs.insert(k, spd.as_slice().to_vec());
            eval::run(&p, &basic, &mut bufs);

            let mut expect = spd.as_slice().to_vec();
            slingen_blas::dpotrf(Uplo::Lower, n, &mut expect, n);
            let got = &bufs[&l];
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (got[i * n + j] - expect[i * n + j]).abs() < 1e-9,
                        "n={n} {policy} at ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn trsm_left_transposed() {
    // Uᵀ·B = P (the Kalman filter's solve), B the unknown
    for &n in &SIZES {
        let cols = (n / 2).max(1);
        for policy in Policy::ALL {
            let mut b = ProgramBuilder::new("trsm");
            let u = b.declare(
                OperandDecl::mat_in("U", n, n)
                    .with_structure(Structure::UpperTriangular)
                    .with_properties(Properties::ns()),
            );
            let pmat = b.declare(OperandDecl::mat_in("P", n, cols));
            let x = b.declare(OperandDecl::mat_out("B", n, cols));
            b.equation(Expr::op(u).t().mul(Expr::op(x)), Expr::op(pmat));
            let p = b.build().unwrap();
            let mut db = AlgorithmDb::new();
            let basic = synthesize_program(&p, policy, 4, &mut db).unwrap();

            let tri = testgen::well_conditioned_triangular(n, Uplo::Upper, 5);
            let rhs = testgen::general(n, cols, 6);
            let mut bufs = buffers_for(&p);
            bufs.insert(u, tri.as_slice().to_vec());
            bufs.insert(pmat, rhs.as_slice().to_vec());
            eval::run(&p, &basic, &mut bufs);

            let mut expect = rhs.as_slice().to_vec();
            slingen_blas::dtrsm(
                slingen_blas::Side::Left,
                Uplo::Upper,
                slingen_blas::Trans::Yes,
                slingen_blas::Diag::NonUnit,
                n,
                cols,
                1.0,
                tri.as_slice(),
                n,
                &mut expect,
                cols,
            );
            assert!(max_diff(&bufs[&x], &expect) < 1e-9, "n={n} {policy}\n{}", basic.render(&p));
        }
    }
}

#[test]
fn trsm_right_solves() {
    // X·L = B  (right-side solve)
    for &n in &[2usize, 4, 7] {
        let rows = 3;
        for policy in Policy::ALL {
            let mut b = ProgramBuilder::new("trsm_r");
            let l = b.declare(
                OperandDecl::mat_in("L", n, n)
                    .with_structure(Structure::LowerTriangular)
                    .with_properties(Properties::ns()),
            );
            let bmat = b.declare(OperandDecl::mat_in("B", rows, n));
            let x = b.declare(OperandDecl::mat_out("X", rows, n));
            b.equation(Expr::op(x).mul(Expr::op(l)), Expr::op(bmat));
            let p = b.build().unwrap();
            let mut db = AlgorithmDb::new();
            let basic = synthesize_program(&p, policy, 4, &mut db).unwrap();

            let tri = testgen::well_conditioned_triangular(n, Uplo::Lower, 15);
            let rhs = testgen::general(rows, n, 16);
            let mut bufs = buffers_for(&p);
            bufs.insert(l, tri.as_slice().to_vec());
            bufs.insert(bmat, rhs.as_slice().to_vec());
            eval::run(&p, &basic, &mut bufs);

            let mut expect = rhs.as_slice().to_vec();
            slingen_blas::dtrsm(
                slingen_blas::Side::Right,
                Uplo::Lower,
                slingen_blas::Trans::No,
                slingen_blas::Diag::NonUnit,
                rows,
                n,
                1.0,
                tri.as_slice(),
                n,
                &mut expect,
                n,
            );
            assert!(max_diff(&bufs[&x], &expect) < 1e-9, "n={n} {policy}");
        }
    }
}

#[test]
fn trsv_vector_rhs() {
    // L·t0 = y with a vector unknown (from the gpr program)
    for &n in &SIZES {
        for policy in Policy::ALL {
            let mut b = ProgramBuilder::new("trsv");
            let l = b.declare(
                OperandDecl::mat_in("L", n, n)
                    .with_structure(Structure::LowerTriangular)
                    .with_properties(Properties::ns()),
            );
            let y = b.declare(OperandDecl::vec_in("y", n));
            let t0 = b.declare(OperandDecl::vec_out("t0", n));
            b.equation(Expr::op(l).mul(Expr::op(t0)), Expr::op(y));
            let p = b.build().unwrap();
            let mut db = AlgorithmDb::new();
            let basic = synthesize_program(&p, policy, 4, &mut db).unwrap();

            let tri = testgen::well_conditioned_triangular(n, Uplo::Lower, 25);
            let rhs = testgen::vector(n, 26);
            let mut bufs = buffers_for(&p);
            bufs.insert(l, tri.as_slice().to_vec());
            bufs.insert(y, rhs.clone());
            eval::run(&p, &basic, &mut bufs);

            let mut expect = rhs;
            slingen_blas::dtrsv(
                Uplo::Lower,
                slingen_blas::Trans::No,
                slingen_blas::Diag::NonUnit,
                n,
                tri.as_slice(),
                n,
                &mut expect,
            );
            assert!(max_diff(&bufs[&t0], &expect) < 1e-9, "n={n} {policy}");
        }
    }
}

#[test]
fn trtri_inversion() {
    for &n in &SIZES {
        for policy in Policy::ALL {
            let mut b = ProgramBuilder::new("trtri");
            let l = b.declare(
                OperandDecl::mat_in("L", n, n)
                    .with_structure(Structure::LowerTriangular)
                    .with_properties(Properties::ns()),
            );
            let x = b.declare(
                OperandDecl::mat_out("X", n, n)
                    .with_structure(Structure::LowerTriangular)
                    .with_properties(Properties::ns()),
            );
            b.equation(Expr::op(x), Expr::op(l).inv());
            let p = b.build().unwrap();
            let mut db = AlgorithmDb::new();
            let basic = synthesize_program(&p, policy, 4, &mut db)
                .unwrap_or_else(|e| panic!("n={n} {policy}: {e}"));

            let tri = testgen::well_conditioned_triangular(n, Uplo::Lower, 35);
            let mut bufs = buffers_for(&p);
            bufs.insert(l, tri.as_slice().to_vec());
            eval::run(&p, &basic, &mut bufs);

            let mut expect = tri.as_slice().to_vec();
            slingen_blas::dtrtri(Uplo::Lower, n, &mut expect, n);
            let got = &bufs[&x];
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (got[i * n + j] - expect[i * n + j]).abs() < 1e-9,
                        "n={n} {policy} at ({i},{j}): {} vs {}\n{}",
                        got[i * n + j],
                        expect[i * n + j],
                        basic.render(&p)
                    );
                }
            }
        }
    }
}

#[test]
fn trsyl_sylvester() {
    // L·X + X·U = C
    for &(m, n) in &[(1usize, 1usize), (2, 2), (4, 3), (5, 8), (12, 12)] {
        for policy in Policy::ALL {
            let mut b = ProgramBuilder::new("trsyl");
            let l = b.declare(
                OperandDecl::mat_in("L", m, m)
                    .with_structure(Structure::LowerTriangular)
                    .with_properties(Properties::ns()),
            );
            let u = b.declare(
                OperandDecl::mat_in("U", n, n)
                    .with_structure(Structure::UpperTriangular)
                    .with_properties(Properties::ns()),
            );
            let c = b.declare(OperandDecl::mat_in("C", m, n));
            let x = b.declare(OperandDecl::mat_out("X", m, n));
            b.equation(Expr::op(l).mul(Expr::op(x)).add(Expr::op(x).mul(Expr::op(u))), Expr::op(c));
            let p = b.build().unwrap();
            let mut db = AlgorithmDb::new();
            let basic = synthesize_program(&p, policy, 4, &mut db)
                .unwrap_or_else(|e| panic!("m={m} n={n} {policy}: {e}"));

            let lt = testgen::well_conditioned_triangular(m, Uplo::Lower, 45);
            let ut = testgen::well_conditioned_triangular(n, Uplo::Upper, 46);
            let rhs = testgen::general(m, n, 47);
            let mut bufs = buffers_for(&p);
            bufs.insert(l, lt.as_slice().to_vec());
            bufs.insert(u, ut.as_slice().to_vec());
            bufs.insert(c, rhs.as_slice().to_vec());
            eval::run(&p, &basic, &mut bufs);

            let mut expect = rhs.as_slice().to_vec();
            slingen_blas::dtrsyl(m, n, lt.as_slice(), m, ut.as_slice(), n, &mut expect, n);
            assert!(
                max_diff(&bufs[&x], &expect) < 1e-9,
                "m={m} n={n} {policy}\n{}",
                basic.render(&p)
            );
        }
    }
}

#[test]
fn trlya_lyapunov() {
    // L·X + X·Lᵀ = S, X symmetric
    for &n in &SIZES {
        for policy in Policy::ALL {
            let mut b = ProgramBuilder::new("trlya");
            let l = b.declare(
                OperandDecl::mat_in("L", n, n)
                    .with_structure(Structure::LowerTriangular)
                    .with_properties(Properties::ns()),
            );
            let s = b.declare(
                OperandDecl::mat_in("S", n, n)
                    .with_structure(Structure::Symmetric(StorageHalf::Lower)),
            );
            let x = b.declare(
                OperandDecl::mat_out("X", n, n)
                    .with_structure(Structure::Symmetric(StorageHalf::Lower)),
            );
            b.equation(
                Expr::op(l).mul(Expr::op(x)).add(Expr::op(x).mul(Expr::op(l).t())),
                Expr::op(s),
            );
            let p = b.build().unwrap();
            let mut db = AlgorithmDb::new();
            let basic = synthesize_program(&p, policy, 4, &mut db)
                .unwrap_or_else(|e| panic!("n={n} {policy}: {e}"));

            let lt = testgen::well_conditioned_triangular(n, Uplo::Lower, 55);
            let sym = testgen::symmetrize(&testgen::general(n, n, 56), Uplo::Lower);
            let mut bufs = buffers_for(&p);
            bufs.insert(l, lt.as_slice().to_vec());
            bufs.insert(s, sym.as_slice().to_vec());
            eval::run(&p, &basic, &mut bufs);

            let mut expect = sym.as_slice().to_vec();
            slingen_blas::dtrlya(n, lt.as_slice(), n, &mut expect, n);
            assert!(max_diff(&bufs[&x], &expect) < 1e-9, "n={n} {policy}\n{}", basic.render(&p));
        }
    }
}

#[test]
fn algorithm_db_reuse_is_transparent() {
    // identical output with the Stage-1a cache on and off, and nontrivial
    // hit counts when on
    let n = 12;
    let build = || {
        let mut b = ProgramBuilder::new("potrf");
        let s = b.declare(
            OperandDecl::mat_in("S", n, n)
                .with_structure(Structure::Symmetric(StorageHalf::Upper))
                .with_properties(Properties::pd()),
        );
        let u = b.declare(
            OperandDecl::mat_out("U", n, n)
                .with_structure(Structure::UpperTriangular)
                .with_properties(Properties::ns()),
        );
        b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
        (b.build().unwrap(), s, u)
    };
    let (p, _, _) = build();
    let mut db_on = AlgorithmDb::new();
    let with_cache = synthesize_program(&p, Policy::Lazy, 4, &mut db_on).unwrap();
    let mut db_off = AlgorithmDb::new();
    db_off.set_enabled(false);
    let without_cache = synthesize_program(&p, Policy::Lazy, 4, &mut db_off).unwrap();
    assert_eq!(with_cache, without_cache, "cache must be transparent");
    assert!(db_on.hits() > 0, "repeated ν-size codelets should hit the DB");
    assert_eq!(db_off.hits(), 0);
}

#[test]
fn policies_produce_different_programs_same_result() {
    let n = 8;
    let mut b = ProgramBuilder::new("potrf");
    let s = b.declare(
        OperandDecl::mat_in("S", n, n)
            .with_structure(Structure::Symmetric(StorageHalf::Upper))
            .with_properties(Properties::pd()),
    );
    let u = b.declare(
        OperandDecl::mat_out("U", n, n)
            .with_structure(Structure::UpperTriangular)
            .with_properties(Properties::ns()),
    );
    b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
    let p = b.build().unwrap();
    let mut db = AlgorithmDb::new();
    let lazy = synthesize_program(&p, Policy::Lazy, 4, &mut db).unwrap();
    let eager = synthesize_program(&p, Policy::Eager, 4, &mut db).unwrap();
    assert_ne!(lazy, eager, "policies are distinct algorithmic variants");
    let _ = (s, u);
}
