//! LU factorization (the remaining operation of the paper's LA language):
//! `L·U = A` with both factors unknown, validated against the reference
//! `dgetrf_nopiv`.

use slingen_ir::{Expr, OpId, OperandDecl, ProgramBuilder, Properties, Structure};
use slingen_synth::program::eval;
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use std::collections::HashMap;

#[test]
fn lu_factorization_matches_reference() {
    for &n in &[1usize, 2, 3, 5, 8, 12] {
        for policy in Policy::ALL {
            let mut b = ProgramBuilder::new("getrf");
            let a = b.declare(OperandDecl::mat_in("A", n, n).with_properties(Properties::ns()));
            let l = b.declare(
                OperandDecl::mat_out("L", n, n)
                    .with_structure(Structure::LowerTriangular)
                    .with_properties(Properties { unit_diagonal: true, ..Properties::ns() }),
            );
            let u = b.declare(
                OperandDecl::mat_out("U", n, n)
                    .with_structure(Structure::UpperTriangular)
                    .with_properties(Properties::ns()),
            );
            b.equation(Expr::op(l).mul(Expr::op(u)), Expr::op(a));
            let p = b.build().unwrap();
            let mut db = AlgorithmDb::new();
            let basic = synthesize_program(&p, policy, 4, &mut db)
                .unwrap_or_else(|e| panic!("n={n} {policy}: {e}"));

            // diagonally dominant input: no pivoting needed
            let mut amat = slingen_blas::testgen::general(n, n, 900 + n as u64);
            for i in 0..n {
                amat[(i, i)] += n as f64 + 2.0;
            }
            let mut bufs: HashMap<OpId, Vec<f64>> = HashMap::new();
            bufs.insert(a, amat.as_slice().to_vec());
            bufs.insert(l, vec![0.0; n * n]);
            bufs.insert(u, vec![0.0; n * n]);
            eval::run(&p, &basic, &mut bufs);

            let mut packed = amat.as_slice().to_vec();
            slingen_blas::dgetrf_nopiv(n, &mut packed, n);
            for i in 0..n {
                for j in 0..n {
                    if j >= i {
                        // U entries on/above the diagonal
                        assert!(
                            (bufs[&u][i * n + j] - packed[i * n + j]).abs() < 1e-9,
                            "n={n} {policy} U({i},{j})"
                        );
                    }
                    if j < i {
                        // L entries below the diagonal
                        assert!(
                            (bufs[&l][i * n + j] - packed[i * n + j]).abs() < 1e-9,
                            "n={n} {policy} L({i},{j})"
                        );
                    }
                }
                // explicit unit diagonal of L
                assert!((bufs[&l][i * n + i] - 1.0).abs() < 1e-12, "n={n} L({i},{i})");
            }
        }
    }
}

#[test]
fn lu_through_full_pipeline() {
    // lower to C-IR, optimize, execute in the VM
    let n = 8;
    let mut b = ProgramBuilder::new("getrf");
    let a = b.declare(OperandDecl::mat_in("A", n, n).with_properties(Properties::ns()));
    let l = b.declare(OperandDecl::mat_out("L", n, n).with_structure(Structure::LowerTriangular));
    let u = b.declare(OperandDecl::mat_out("U", n, n).with_structure(Structure::UpperTriangular));
    b.equation(Expr::op(l).mul(Expr::op(u)), Expr::op(a));
    let p = b.build().unwrap();
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(&p, Policy::Lazy, 4, &mut db).unwrap();
    let f = slingen_lgen::lower_program(
        &p,
        &basic,
        "getrf",
        &slingen_lgen::LowerOptions { nu: 4, loop_threshold: 64 },
    )
    .unwrap();
    let mut opt = f.clone();
    slingen_cir::passes::optimize(&mut opt, &slingen_cir::passes::PassConfig::default());
    let mut fb = slingen_cir::FunctionBuilder::new("probe", 4);
    let map = slingen_lgen::BufferMap::build(&p, &mut fb);
    let mut amat = slingen_blas::testgen::general(n, n, 42);
    for i in 0..n {
        amat[(i, i)] += n as f64 + 2.0;
    }
    let mut bufs = slingen_vm::BufferSet::for_function(&opt);
    bufs.set(map.buf(a), amat.as_slice());
    slingen_vm::execute(&opt, &mut bufs, &mut slingen_vm::NullMonitor).unwrap();
    let mut packed = amat.as_slice().to_vec();
    slingen_blas::dgetrf_nopiv(n, &mut packed, n);
    let got_u = bufs.get(map.buf(u));
    for i in 0..n {
        for j in i..n {
            assert!(
                (got_u[i * n + j] - packed[i * n + j]).abs() < 1e-9,
                "U({i},{j}): {} vs {}",
                got_u[i * n + j],
                packed[i * n + j]
            );
        }
    }
}
