//! Failure injection: the synthesis engine must reject what it cannot
//! solve with a diagnosable error, never silently emit wrong algorithms.

use slingen_ir::{Expr, OperandDecl, ProgramBuilder, Properties, Structure};
use slingen_synth::{synthesize_program, AlgorithmDb, Policy, SynthError};

#[test]
fn general_coefficient_solve_is_rejected() {
    // A·X = B with *general* (non-triangular) A has no substitution
    // algorithm in the knowledge base (it would need LU + pivoting).
    let mut b = ProgramBuilder::new("bad");
    let a = b.declare(OperandDecl::mat_in("A", 4, 4).with_properties(Properties::ns()));
    let c = b.declare(OperandDecl::mat_in("C", 4, 4));
    let x = b.declare(OperandDecl::mat_out("X", 4, 4));
    b.equation(Expr::op(a).mul(Expr::op(x)), Expr::op(c));
    let p = b.build().unwrap();
    let mut db = AlgorithmDb::new();
    let err = synthesize_program(&p, Policy::Lazy, 4, &mut db).unwrap_err();
    // the 2x2 diagonal cells expose the general coefficient; at size 1 it
    // degenerates to a division, so larger sizes must fail in recognition
    // or produce a correct algorithm — for general A the engine refuses
    // at the non-triangular diagonal block
    match err {
        SynthError::Unrecognized(_) | SynthError::Unsupported(_) => {}
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn quadratic_without_pd_is_still_recognized_by_shape() {
    // recognition is syntactic; PD licensing is the program author's
    // responsibility (as in the paper's LA declarations)
    let mut b = ProgramBuilder::new("shape");
    let s = b.declare(
        OperandDecl::mat_in("S", 4, 4)
            .with_structure(Structure::Symmetric(slingen_ir::structure::StorageHalf::Upper)),
    );
    let u = b.declare(OperandDecl::mat_out("U", 4, 4).with_structure(Structure::UpperTriangular));
    b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
    let p = b.build().unwrap();
    let mut db = AlgorithmDb::new();
    assert!(synthesize_program(&p, Policy::Lazy, 4, &mut db).is_ok());
}

#[test]
fn inverse_inside_expression_is_rejected() {
    // only the `X = inv(A)` form is supported (as in the paper's grammar
    // note: the inverse appears alone on the right-hand side)
    let mut b = ProgramBuilder::new("bad_inv");
    let a = b.declare(
        OperandDecl::mat_in("A", 4, 4)
            .with_structure(Structure::LowerTriangular)
            .with_properties(Properties::ns()),
    );
    let c = b.declare(OperandDecl::mat_in("C", 4, 4));
    let x = b.declare(OperandDecl::mat_out("X", 4, 4));
    b.equation(Expr::op(x), Expr::op(c).mul(Expr::op(a).inv()));
    let p = b.build().unwrap();
    let mut db = AlgorithmDb::new();
    let err = synthesize_program(&p, Policy::Lazy, 4, &mut db).unwrap_err();
    assert!(matches!(err, SynthError::Unsupported(_) | SynthError::Unrecognized(_)));
}

#[test]
fn two_coupled_unknown_operands_are_rejected() {
    // L·Lᵀ = K is fine (one unknown, quadratic); L·M = K with both L and
    // M unknown is not solvable by the knowledge base
    let mut b = ProgramBuilder::new("two_unknown");
    let k = b.declare(OperandDecl::mat_in("K", 4, 4));
    let l = b.declare(OperandDecl::mat_out("L", 4, 4).with_structure(Structure::LowerTriangular));
    let m = b.declare(OperandDecl::mat_out("M", 4, 4));
    b.equation(Expr::op(l).mul(Expr::op(m)), Expr::op(k));
    let p = b.build().unwrap();
    let mut db = AlgorithmDb::new();
    let err = synthesize_program(&p, Policy::Lazy, 4, &mut db).unwrap_err();
    assert!(matches!(err, SynthError::Unrecognized(_) | SynthError::Unsupported(_)), "{err:?}");
}

#[test]
fn derived_listing_contains_paper_codelet_shapes() {
    // the potrf expansion must end in the Fig. 9 scalar codelets:
    // sqrt on the diagonal, a division per off-diagonal row
    let n = 8;
    let mut b = ProgramBuilder::new("potrf");
    let s = b.declare(
        OperandDecl::mat_in("S", n, n)
            .with_structure(Structure::Symmetric(slingen_ir::structure::StorageHalf::Upper))
            .with_properties(Properties::pd()),
    );
    let u = b.declare(
        OperandDecl::mat_out("U", n, n)
            .with_structure(Structure::UpperTriangular)
            .with_properties(Properties::ns()),
    );
    b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
    let p = b.build().unwrap();
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(&p, Policy::Lazy, 4, &mut db).unwrap();
    let text = basic.render(&p);
    // n sqrt statements (one per diagonal element)
    assert_eq!(text.matches("sqrt(").count(), n, "{text}");
    // divisions by the diagonal elements (trsm rows, Fig. 10's R-form)
    assert!(text.matches(" / ").count() >= n - 1, "{text}");
    let _ = (s, u);
}
