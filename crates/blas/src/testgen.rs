//! Deterministic workload generators.
//!
//! The paper benchmarks on random inputs; factorizations additionally need
//! *valid* inputs (symmetric positive definite for Cholesky, non-singular
//! triangular for solvers). These generators produce well-conditioned
//! instances from a seed, with no dependency on a RNG crate so that every
//! crate in the workspace can use them.

use crate::mat::Mat;
use crate::Uplo;

/// A tiny deterministic PRNG (xorshift64*), sufficient for workloads.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator (seed 0 is remapped).
    pub fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    /// Next u64.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in [-1, 1).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

/// A dense matrix with entries in [-1, 1).
pub fn general(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = Rng::new(seed);
    Mat::from_fn(rows, cols, |_, _| rng.unit())
}

/// A vector with entries in [-1, 1).
pub fn vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.unit()).collect()
}

/// A symmetric positive definite matrix `A·Aᵀ + n·I` (full storage).
pub fn spd(n: usize, seed: u64) -> Mat {
    let a = general(n, n, seed);
    let mut s = a.matmul(&a.transposed());
    for i in 0..n {
        s[(i, i)] += n as f64;
    }
    s
}

/// A well-conditioned triangular matrix: unit-scale entries with a
/// dominant diagonal (ensures `NS` and keeps solves stable).
pub fn well_conditioned_triangular(n: usize, uplo: Uplo, seed: u64) -> Mat {
    let mut rng = Rng::new(seed);
    Mat::from_fn(n, n, |i, j| {
        let stored = match uplo {
            Uplo::Lower => i >= j,
            Uplo::Upper => i <= j,
        };
        if !stored {
            0.0
        } else if i == j {
            2.0 + rng.unit().abs() + n as f64 / 8.0
        } else {
            rng.unit() * 0.5
        }
    })
}

/// Mirror the `uplo` triangle onto the other half (symmetric full storage,
/// the paper's storage scheme for `UpSym`/`LoSym`).
pub fn symmetrize(m: &Mat, uplo: Uplo) -> Mat {
    let n = m.rows();
    Mat::from_fn(n, n, |i, j| {
        let (si, sj) = match uplo {
            Uplo::Upper => (i.min(j), i.max(j)),
            Uplo::Lower => (i.max(j), i.min(j)),
        };
        m[(si, sj)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(general(3, 3, 5), general(3, 3, 5));
        assert_ne!(general(3, 3, 5), general(3, 3, 6));
    }

    #[test]
    fn spd_is_symmetric_with_positive_diag() {
        let s = spd(6, 9);
        for i in 0..6 {
            assert!(s[(i, i)] > 0.0);
            for j in 0..6 {
                assert!((s[(i, j)] - s[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn triangular_has_zero_other_half() {
        let l = well_conditioned_triangular(5, Uplo::Lower, 3);
        for i in 0..5 {
            for j in 0..5 {
                if j > i {
                    assert_eq!(l[(i, j)], 0.0);
                }
            }
        }
        let u = well_conditioned_triangular(5, Uplo::Upper, 3);
        for i in 0..5 {
            for j in 0..5 {
                if j < i {
                    assert_eq!(u[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn symmetrize_mirrors() {
        let a = general(4, 4, 1);
        let s = symmetrize(&a, Uplo::Upper);
        for i in 0..4 {
            for j in i..4 {
                assert_eq!(s[(i, j)], a[(i, j)]);
                assert_eq!(s[(j, i)], a[(i, j)]);
            }
        }
    }

    #[test]
    fn rng_unit_in_range() {
        let mut rng = Rng::new(123);
        for _ in 0..1000 {
            let v = rng.unit();
            assert!((-1.0..1.0).contains(&v));
        }
    }
}
