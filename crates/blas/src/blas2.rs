//! Level-2 BLAS: matrix-vector operations (row-major, explicit leading
//! dimension `lda` = row stride).

#![allow(clippy::too_many_arguments, clippy::needless_range_loop)]

use crate::{Diag, Trans, Uplo};

/// `y ← alpha·op(A)·x + beta·y` where `A` is `m × n` (as stored).
///
/// # Panics
///
/// Panics if slices are too short for the given dimensions.
pub fn dgemv(
    trans: Trans,
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) {
    match trans {
        Trans::No => {
            assert!(x.len() >= n && y.len() >= m);
            for i in 0..m {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += a[i * lda + j] * x[j];
                }
                y[i] = alpha * acc + beta * y[i];
            }
        }
        Trans::Yes => {
            assert!(x.len() >= m && y.len() >= n);
            for j in 0..n {
                let mut acc = 0.0;
                for i in 0..m {
                    acc += a[i * lda + j] * x[i];
                }
                y[j] = alpha * acc + beta * y[j];
            }
        }
    }
}

/// Rank-1 update `A ← A + alpha·x·yᵀ` (`A` is `m × n`).
pub fn dger(m: usize, n: usize, alpha: f64, x: &[f64], y: &[f64], a: &mut [f64], lda: usize) {
    for i in 0..m {
        for j in 0..n {
            a[i * lda + j] += alpha * x[i] * y[j];
        }
    }
}

/// Symmetric matrix-vector product `y ← alpha·A·x + beta·y` reading only
/// the `uplo` triangle of the `n × n` matrix `A`.
pub fn dsymv(
    uplo: Uplo,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) {
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..n {
            let v = match uplo {
                Uplo::Upper => {
                    if i <= j {
                        a[i * lda + j]
                    } else {
                        a[j * lda + i]
                    }
                }
                Uplo::Lower => {
                    if i >= j {
                        a[i * lda + j]
                    } else {
                        a[j * lda + i]
                    }
                }
            };
            acc += v * x[j];
        }
        y[i] = alpha * acc + beta * y[i];
    }
}

/// Triangular matrix-vector product `x ← op(T)·x`.
pub fn dtrmv(uplo: Uplo, trans: Trans, diag: Diag, n: usize, t: &[f64], ldt: usize, x: &mut [f64]) {
    let get = |i: usize, j: usize| -> f64 {
        if i == j && diag == Diag::Unit {
            1.0
        } else {
            t[i * ldt + j]
        }
    };
    let stored = |i: usize, j: usize| -> bool {
        match uplo {
            Uplo::Lower => i >= j,
            Uplo::Upper => i <= j,
        }
    };
    let mut out = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            let v = match trans {
                Trans::No => {
                    if stored(i, j) {
                        get(i, j)
                    } else {
                        0.0
                    }
                }
                Trans::Yes => {
                    if stored(j, i) {
                        get(j, i)
                    } else {
                        0.0
                    }
                }
            };
            out[i] += v * x[j];
        }
    }
    x[..n].copy_from_slice(&out);
}

/// Triangular solve `op(T)·x = b`, overwriting `x` (initially `b`).
///
/// # Panics
///
/// Panics if a diagonal entry is exactly zero (matrix must be
/// non-singular, the LA `NS` property).
pub fn dtrsv(uplo: Uplo, trans: Trans, diag: Diag, n: usize, t: &[f64], ldt: usize, x: &mut [f64]) {
    let get = |i: usize, j: usize| -> f64 {
        if i == j && diag == Diag::Unit {
            1.0
        } else {
            t[i * ldt + j]
        }
    };
    // effective orientation after transposition
    let lower = matches!((uplo, trans), (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes));
    let coeff = |i: usize, j: usize| -> f64 {
        match trans {
            Trans::No => get(i, j),
            Trans::Yes => get(j, i),
        }
    };
    if lower {
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= coeff(i, j) * x[j];
            }
            let d = coeff(i, i);
            assert!(d != 0.0, "singular triangular matrix");
            x[i] = acc / d;
        }
    } else {
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= coeff(i, j) * x[j];
            }
            let d = coeff(i, i);
            assert!(d != 0.0, "singular triangular matrix");
            x[i] = acc / d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;
    use crate::testgen;

    #[test]
    fn gemv_matches_dense() {
        let a = Mat::from_fn(3, 4, |i, j| (i * 4 + j) as f64 + 1.0);
        let x = [1.0, -1.0, 2.0, 0.5];
        let mut y = [1.0, 1.0, 1.0];
        dgemv(Trans::No, 3, 4, 2.0, a.as_slice(), 4, &x, 3.0, &mut y);
        // reference
        let mut expect = [0.0; 3];
        for i in 0..3 {
            let mut acc = 0.0;
            for j in 0..4 {
                acc += a[(i, j)] * x[j];
            }
            expect[i] = 2.0 * acc + 3.0;
        }
        assert_eq!(y, expect);
    }

    #[test]
    fn gemv_transposed() {
        let a = Mat::from_fn(3, 2, |i, j| (i + j) as f64);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0, 0.0];
        dgemv(Trans::Yes, 3, 2, 1.0, a.as_slice(), 2, &x, 0.0, &mut y);
        assert_eq!(y, [0.0 + 2.0 + 6.0, 1.0 + 4.0 + 9.0]);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Mat::zeros(2, 3);
        dger(2, 3, 2.0, &[1.0, 2.0], &[3.0, 4.0, 5.0], a.as_mut_slice(), 3);
        assert_eq!(a.as_slice(), &[6.0, 8.0, 10.0, 12.0, 16.0, 20.0]);
    }

    #[test]
    fn symv_reads_one_triangle() {
        // store only the upper triangle; garbage below
        let mut a = Mat::from_fn(3, 3, |i, j| if i <= j { (i + j) as f64 + 1.0 } else { 777.0 });
        let x = [1.0, 1.0, 1.0];
        let mut y = [0.0; 3];
        dsymv(Uplo::Upper, 3, 1.0, a.as_mut_slice(), 3, &x, 0.0, &mut y);
        // full symmetric matrix rows: [1,2,3],[2,3,4],[3,4,5]
        assert_eq!(y, [6.0, 9.0, 12.0]);
    }

    #[test]
    fn trsv_solves_all_orientations() {
        let n = 6;
        let l = testgen::well_conditioned_triangular(n, Uplo::Lower, 42);
        for (uplo, t) in [
            (Uplo::Lower, Trans::No),
            (Uplo::Lower, Trans::Yes),
            (Uplo::Upper, Trans::No),
            (Uplo::Upper, Trans::Yes),
        ] {
            let tri = match uplo {
                Uplo::Lower => l.clone(),
                Uplo::Upper => l.transposed(),
            };
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
            // b = op(T) x_true
            let mut b = x_true.clone();
            dtrmv(uplo, t, Diag::NonUnit, n, tri.as_slice(), n, &mut b);
            let mut x = b.clone();
            dtrsv(uplo, t, Diag::NonUnit, n, tri.as_slice(), n, &mut x);
            for i in 0..n {
                assert!(
                    (x[i] - x_true[i]).abs() < 1e-9,
                    "uplo={uplo:?} trans={t:?} lane {i}: {} vs {}",
                    x[i],
                    x_true[i]
                );
            }
        }
    }

    #[test]
    fn trsv_unit_diagonal() {
        let n = 4;
        let mut l = testgen::well_conditioned_triangular(n, Uplo::Lower, 7);
        // unit diag means stored diagonal is ignored
        for i in 0..n {
            l[(i, i)] = 999.0;
        }
        let x_true = [1.0, -2.0, 0.5, 3.0];
        let mut b = x_true;
        dtrmv(Uplo::Lower, Trans::No, Diag::Unit, n, l.as_slice(), n, &mut b);
        let mut x = b;
        dtrsv(Uplo::Lower, Trans::No, Diag::Unit, n, l.as_slice(), n, &mut x);
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn trsv_rejects_singular() {
        let t = Mat::zeros(2, 2);
        let mut x = [1.0, 1.0];
        dtrsv(Uplo::Lower, Trans::No, Diag::NonUnit, 2, t.as_slice(), 2, &mut x);
    }
}
