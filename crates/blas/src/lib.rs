//! # slingen-blas
//!
//! A self-contained BLAS/LAPACK substrate in pure Rust.
//!
//! The paper's evaluation compares generated code against library-based
//! implementations (Intel MKL, ReLAPACK, RECSY) and uses LAPACK semantics
//! as the correctness reference. This crate provides that substrate:
//!
//! * level-1/2/3 BLAS kernels (`ddot`, `daxpy`, `dgemv`, `dtrsv`, `dgemm`,
//!   `dsyrk`, `dtrsm`, `dtrmm`, ...) with row-major storage and explicit
//!   leading dimensions;
//! * unblocked LAPACK-style routines: Cholesky (`dpotrf`), triangular
//!   inversion (`dtrtri`), triangular Sylvester (`dtrsyl`) and Lyapunov
//!   (`dtrlya`) solvers, LU (`dgetrf_nopiv`);
//! * recursive variants in the style of ReLAPACK and RECSY
//!   ([`recursive`]);
//! * deterministic workload generators (SPD matrices, well-conditioned
//!   triangular factors) used throughout the test and benchmark suites.
//!
//! Everything here is the *oracle*: the generated C-IR is validated
//! against these routines, and the library-style baselines mirror their
//! call trees.

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod lapack;
pub mod mat;
pub mod recursive;
pub mod testgen;

pub use blas1::{dasum, daxpy, ddot, dnrm2, dscal};
pub use blas2::{dgemv, dger, dsymv, dtrmv, dtrsv};
pub use blas3::{dgemm, dsyrk, dtrmm, dtrsm};
pub use lapack::{dgetrf_nopiv, dpotrf, dtrlya, dtrsyl, dtrtri};
pub use mat::Mat;

/// Transposition flag for BLAS-style calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Which triangle of a matrix is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uplo {
    /// Lower triangle.
    Lower,
    /// Upper triangle.
    Upper,
}

/// Which side a triangular operand multiplies from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve/multiply with the triangular matrix on the left.
    Left,
    /// Solve/multiply with the triangular matrix on the right.
    Right,
}

/// Whether a triangular matrix has an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are stored.
    NonUnit,
    /// Diagonal entries are implicitly one.
    Unit,
}
