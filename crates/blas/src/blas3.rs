//! Level-3 BLAS: matrix-matrix operations (row-major, explicit leading
//! dimensions).

use crate::{Diag, Side, Trans, Uplo};

/// `C ← alpha·op(A)·op(B) + beta·C` with `C` of size `m × n` and inner
/// dimension `k`.
///
/// # Panics
///
/// Panics (in debug builds) on out-of-range accesses implied by wrong
/// dimensions.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    trans_a: Trans,
    trans_b: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    let ga = |i: usize, p: usize| -> f64 {
        match trans_a {
            Trans::No => a[i * lda + p],
            Trans::Yes => a[p * lda + i],
        }
    };
    let gb = |p: usize, j: usize| -> f64 {
        match trans_b {
            Trans::No => b[p * ldb + j],
            Trans::Yes => b[j * ldb + p],
        }
    };
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += ga(i, p) * gb(p, j);
            }
            c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
        }
    }
}

/// Symmetric rank-k update: `C ← alpha·op(A)·op(A)ᵀ + beta·C`, writing only
/// the `uplo` triangle of the `n × n` matrix `C`. With `trans = Yes` the
/// update is `alpha·Aᵀ·A + beta·C` (`A` is `k × n`); otherwise `A` is
/// `n × k`.
#[allow(clippy::too_many_arguments)]
pub fn dsyrk(
    uplo: Uplo,
    trans: Trans,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    let g = |i: usize, p: usize| -> f64 {
        match trans {
            Trans::No => a[i * lda + p],
            Trans::Yes => a[p * lda + i],
        }
    };
    for i in 0..n {
        for j in 0..n {
            let in_triangle = match uplo {
                Uplo::Upper => j >= i,
                Uplo::Lower => j <= i,
            };
            if !in_triangle {
                continue;
            }
            let mut acc = 0.0;
            for p in 0..k {
                acc += g(i, p) * g(j, p);
            }
            c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
        }
    }
}

/// Triangular solve with multiple right-hand sides:
/// `op(T)·X = alpha·B` (left) or `X·op(T) = alpha·B` (right), overwriting
/// `B` with `X`. `B` is `m × n`.
///
/// # Panics
///
/// Panics if the triangular matrix is singular.
#[allow(clippy::too_many_arguments)]
pub fn dtrsm(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: f64,
    t: &[f64],
    ldt: usize,
    b: &mut [f64],
    ldb: usize,
) {
    if alpha != 1.0 {
        for i in 0..m {
            for j in 0..n {
                b[i * ldb + j] *= alpha;
            }
        }
    }
    let dim = match side {
        Side::Left => m,
        Side::Right => n,
    };
    let get = |i: usize, j: usize| -> f64 {
        if i == j && diag == Diag::Unit {
            1.0
        } else {
            t[i * ldt + j]
        }
    };
    let coeff = |i: usize, j: usize| -> f64 {
        match trans {
            Trans::No => get(i, j),
            Trans::Yes => get(j, i),
        }
    };
    // effective orientation of op(T)
    let lower = matches!((uplo, trans), (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes));
    match side {
        Side::Left => {
            // solve op(T) X = B column-block-wise via forward/back subst
            let order: Vec<usize> =
                if lower { (0..dim).collect() } else { (0..dim).rev().collect() };
            for &i in &order {
                let d = coeff(i, i);
                assert!(d != 0.0, "singular triangular matrix");
                let deps: Vec<usize> =
                    if lower { (0..i).collect() } else { (i + 1..dim).collect() };
                for j in 0..n {
                    let mut acc = b[i * ldb + j];
                    for &p in &deps {
                        acc -= coeff(i, p) * b[p * ldb + j];
                    }
                    b[i * ldb + j] = acc / d;
                }
            }
        }
        Side::Right => {
            // solve X op(T) = B row-wise: xᵢ op(T) = bᵢ, i.e. op(T)ᵀ xᵢᵀ = bᵢᵀ
            let effective_lower = !lower; // transposing flips orientation
            let order: Vec<usize> =
                if effective_lower { (0..dim).collect() } else { (0..dim).rev().collect() };
            for &j in &order {
                let d = coeff(j, j);
                assert!(d != 0.0, "singular triangular matrix");
                let deps: Vec<usize> =
                    if effective_lower { (0..j).collect() } else { (j + 1..dim).collect() };
                for i in 0..m {
                    let mut acc = b[i * ldb + j];
                    for &p in &deps {
                        acc -= b[i * ldb + p] * coeff(p, j);
                    }
                    b[i * ldb + j] = acc / d;
                }
            }
        }
    }
}

/// Triangular matrix-matrix product: `B ← op(T)·B` (left) or `B ← B·op(T)`
/// (right). `B` is `m × n`.
#[allow(clippy::too_many_arguments)]
pub fn dtrmm(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    alpha: f64,
    t: &[f64],
    ldt: usize,
    b: &mut [f64],
    ldb: usize,
) {
    let get = |i: usize, j: usize| -> f64 {
        if i == j && diag == Diag::Unit {
            1.0
        } else {
            t[i * ldt + j]
        }
    };
    let stored = |i: usize, j: usize| -> bool {
        match uplo {
            Uplo::Lower => i >= j,
            Uplo::Upper => i <= j,
        }
    };
    let coeff = |i: usize, j: usize| -> f64 {
        match trans {
            Trans::No => {
                if stored(i, j) {
                    get(i, j)
                } else {
                    0.0
                }
            }
            Trans::Yes => {
                if stored(j, i) {
                    get(j, i)
                } else {
                    0.0
                }
            }
        }
    };
    match side {
        Side::Left => {
            let mut out = vec![0.0; m * n];
            for i in 0..m {
                for p in 0..m {
                    let v = coeff(i, p);
                    if v == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        out[i * n + j] += v * b[p * ldb + j];
                    }
                }
            }
            for i in 0..m {
                for j in 0..n {
                    b[i * ldb + j] = alpha * out[i * n + j];
                }
            }
        }
        Side::Right => {
            let mut out = vec![0.0; m * n];
            for i in 0..m {
                for p in 0..n {
                    let v = b[i * ldb + p];
                    if v == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        out[i * n + j] += v * coeff(p, j);
                    }
                }
            }
            for i in 0..m {
                for j in 0..n {
                    b[i * ldb + j] = alpha * out[i * n + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;
    use crate::testgen;

    #[test]
    fn gemm_matches_dense_reference() {
        let a = testgen::general(3, 5, 1);
        let b = testgen::general(5, 4, 2);
        let mut c = testgen::general(3, 4, 3);
        let expect = a.matmul(&b).scale(2.0).add(&c.scale(0.5));
        dgemm(
            Trans::No,
            Trans::No,
            3,
            4,
            5,
            2.0,
            a.as_slice(),
            5,
            b.as_slice(),
            4,
            0.5,
            c.as_mut_slice(),
            4,
        );
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn gemm_transposed_operands() {
        let a = testgen::general(5, 3, 4); // Aᵀ is 3x5
        let b = testgen::general(4, 5, 5); // Bᵀ is 5x4
        let mut c = Mat::zeros(3, 4);
        let expect = a.transposed().matmul(&b.transposed());
        dgemm(
            Trans::Yes,
            Trans::Yes,
            3,
            4,
            5,
            1.0,
            a.as_slice(),
            3,
            b.as_slice(),
            5,
            0.0,
            c.as_mut_slice(),
            4,
        );
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn gemm_with_submatrix_strides() {
        // multiply the top-left 2x2 blocks of two 4x4 matrices
        let a = testgen::general(4, 4, 6);
        let b = testgen::general(4, 4, 7);
        let mut c = Mat::zeros(2, 2);
        dgemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            a.as_slice(),
            4,
            b.as_slice(),
            4,
            0.0,
            c.as_mut_slice(),
            2,
        );
        let a2 = Mat::from_fn(2, 2, |i, j| a[(i, j)]);
        let b2 = Mat::from_fn(2, 2, |i, j| b[(i, j)]);
        assert!(c.approx_eq(&a2.matmul(&b2), 1e-12));
    }

    #[test]
    fn syrk_updates_one_triangle_only() {
        let a = testgen::general(4, 3, 8);
        let mut c = Mat::zeros(4, 4);
        dsyrk(Uplo::Upper, Trans::No, 4, 3, 1.0, a.as_slice(), 3, 0.0, c.as_mut_slice(), 4);
        let full = a.matmul(&a.transposed());
        for i in 0..4 {
            for j in 0..4 {
                if j >= i {
                    assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-12);
                } else {
                    assert_eq!(c[(i, j)], 0.0, "lower triangle must be untouched");
                }
            }
        }
    }

    #[test]
    fn syrk_transposed() {
        let a = testgen::general(3, 4, 9); // AᵀA is 4x4
        let mut c = Mat::zeros(4, 4);
        dsyrk(Uplo::Lower, Trans::Yes, 4, 3, 1.0, a.as_slice(), 4, 0.0, c.as_mut_slice(), 4);
        let full = a.transposed().matmul(&a);
        for i in 0..4 {
            for j in 0..=i {
                assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trsm_all_sides_and_orientations() {
        let m = 5;
        let n = 3;
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                for trans in [Trans::No, Trans::Yes] {
                    let dim = match side {
                        Side::Left => m,
                        Side::Right => n,
                    };
                    let t = testgen::well_conditioned_triangular(dim, uplo, 11);
                    let x_true = testgen::general(m, n, 13);
                    // b = op(T) X or X op(T)
                    let opt = match trans {
                        Trans::No => t.clone(),
                        Trans::Yes => t.transposed(),
                    };
                    let b = match side {
                        Side::Left => opt.matmul(&x_true),
                        Side::Right => x_true.matmul(&opt),
                    };
                    let mut x = b.clone();
                    dtrsm(
                        side,
                        uplo,
                        trans,
                        Diag::NonUnit,
                        m,
                        n,
                        1.0,
                        t.as_slice(),
                        dim,
                        x.as_mut_slice(),
                        n,
                    );
                    assert!(
                        x.approx_eq(&x_true, 1e-9),
                        "side={side:?} uplo={uplo:?} trans={trans:?}\n{x}\nvs\n{x_true}"
                    );
                }
            }
        }
    }

    #[test]
    fn trmm_matches_dense() {
        let m = 4;
        let n = 3;
        let t = testgen::well_conditioned_triangular(m, Uplo::Lower, 21);
        let b0 = testgen::general(m, n, 22);
        let mut b = b0.clone();
        dtrmm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            m,
            n,
            1.0,
            t.as_slice(),
            m,
            b.as_mut_slice(),
            n,
        );
        assert!(b.approx_eq(&t.matmul(&b0), 1e-12));

        let tr = testgen::well_conditioned_triangular(n, Uplo::Upper, 23);
        let mut b = b0.clone();
        dtrmm(
            Side::Right,
            Uplo::Upper,
            Trans::Yes,
            Diag::NonUnit,
            m,
            n,
            1.0,
            tr.as_slice(),
            n,
            b.as_mut_slice(),
            n,
        );
        assert!(b.approx_eq(&b0.matmul(&tr.transposed()), 1e-12));
    }

    #[test]
    fn trsm_inverts_trmm() {
        let m = 6;
        let n = 4;
        let t = testgen::well_conditioned_triangular(m, Uplo::Upper, 31);
        let x0 = testgen::general(m, n, 32);
        let mut b = x0.clone();
        dtrmm(
            Side::Left,
            Uplo::Upper,
            Trans::Yes,
            Diag::NonUnit,
            m,
            n,
            1.0,
            t.as_slice(),
            m,
            b.as_mut_slice(),
            n,
        );
        dtrsm(
            Side::Left,
            Uplo::Upper,
            Trans::Yes,
            Diag::NonUnit,
            m,
            n,
            1.0,
            t.as_slice(),
            m,
            b.as_mut_slice(),
            n,
        );
        assert!(b.approx_eq(&x0, 1e-9));
    }
}
