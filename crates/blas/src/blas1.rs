//! Level-1 BLAS: vector-vector operations.

/// Dot product `xᵀ y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y ← alpha·x + y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha·x`.
pub fn dscal(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`.
pub fn dnrm2(x: &[f64]) -> f64 {
    ddot(x, x).sqrt()
}

/// Sum of absolute values `‖x‖₁`.
pub fn dasum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_axpy_scal() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert_eq!(ddot(&x, &y), 32.0);
        daxpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        dscal(0.5, &mut y);
        assert_eq!(y, [3.0, 4.5, 6.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(dnrm2(&[3.0, 4.0]), 5.0);
        assert_eq!(dasum(&[-1.0, 2.0, -3.0]), 6.0);
        assert_eq!(dnrm2(&[]), 0.0);
    }
}
