//! Unblocked LAPACK-style routines: the reference semantics for every HLAC
//! in the paper's Table 3.

use crate::Uplo;

/// Cholesky factorization (unblocked).
///
/// With [`Uplo::Upper`]: computes upper-triangular `U` with `Uᵀ·U = S`,
/// overwriting the upper triangle of `s` (the paper's `potrf` benchmark,
/// eq. (5)). With [`Uplo::Lower`]: computes `L` with `L·Lᵀ = S`.
/// Entries of the other triangle are zeroed (full storage).
///
/// # Panics
///
/// Panics if `S` is not positive definite (non-positive pivot).
pub fn dpotrf(uplo: Uplo, n: usize, s: &mut [f64], lds: usize) {
    match uplo {
        Uplo::Upper => {
            for i in 0..n {
                let mut d = s[i * lds + i];
                for k in 0..i {
                    d -= s[k * lds + i] * s[k * lds + i];
                }
                assert!(d > 0.0, "matrix not positive definite at pivot {i}");
                let uii = d.sqrt();
                s[i * lds + i] = uii;
                for j in i + 1..n {
                    let mut v = s[i * lds + j];
                    for k in 0..i {
                        v -= s[k * lds + i] * s[k * lds + j];
                    }
                    s[i * lds + j] = v / uii;
                }
                for j in 0..i {
                    s[i * lds + j] = 0.0;
                }
            }
        }
        Uplo::Lower => {
            for i in 0..n {
                let mut d = s[i * lds + i];
                for k in 0..i {
                    d -= s[i * lds + k] * s[i * lds + k];
                }
                assert!(d > 0.0, "matrix not positive definite at pivot {i}");
                let lii = d.sqrt();
                s[i * lds + i] = lii;
                for j in i + 1..n {
                    let mut v = s[j * lds + i];
                    for k in 0..i {
                        v -= s[j * lds + k] * s[i * lds + k];
                    }
                    s[j * lds + i] = v / lii;
                }
                for j in i + 1..n {
                    s[i * lds + j] = 0.0;
                }
            }
        }
    }
}

/// Triangular matrix inversion (unblocked): `T ← T⁻¹` in place, keeping
/// the triangle (the paper's `trtri` benchmark).
///
/// # Panics
///
/// Panics on a zero diagonal entry (`T` must be non-singular).
pub fn dtrtri(uplo: Uplo, n: usize, t: &mut [f64], ldt: usize) {
    match uplo {
        Uplo::Lower => {
            // X L = I (column-oriented): X[j][j] = 1/L[j][j];
            // X[i][j] = -(Σ_{k=j..i-1} L[i][k]·X[k][j]) / L[i][i]
            for j in 0..n {
                let d = t[j * ldt + j];
                assert!(d != 0.0, "singular triangular matrix");
                t[j * ldt + j] = 1.0 / d;
                for i in j + 1..n {
                    let mut acc = 0.0;
                    for k in j..i {
                        acc += t[i * ldt + k] * t[k * ldt + j];
                    }
                    let dii = t[i * ldt + i];
                    assert!(dii != 0.0, "singular triangular matrix");
                    t[i * ldt + j] = -acc / dii;
                }
            }
        }
        Uplo::Upper => {
            for j in (0..n).rev() {
                let d = t[j * ldt + j];
                assert!(d != 0.0, "singular triangular matrix");
                t[j * ldt + j] = 1.0 / d;
                for i in (0..j).rev() {
                    let mut acc = 0.0;
                    for k in i + 1..=j {
                        acc += t[i * ldt + k] * t[k * ldt + j];
                    }
                    let dii = t[i * ldt + i];
                    assert!(dii != 0.0, "singular triangular matrix");
                    t[i * ldt + j] = -acc / dii;
                }
            }
        }
    }
}

/// Triangular continuous-time Sylvester equation `L·X + X·U = C` with `L`
/// lower triangular (`m × m`) and `U` upper triangular (`n × n`),
/// overwriting the `m × n` matrix `c` with `X` (the paper's `trsyl`).
///
/// # Panics
///
/// Panics if `L[i,i] + U[j,j] = 0` for some `(i, j)` (no unique solution).
#[allow(clippy::too_many_arguments)]
pub fn dtrsyl(
    m: usize,
    n: usize,
    l: &[f64],
    ldl: usize,
    u: &[f64],
    ldu: usize,
    c: &mut [f64],
    ldc: usize,
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * ldc + j];
            for k in 0..i {
                acc -= l[i * ldl + k] * c[k * ldc + j];
            }
            for k in 0..j {
                acc -= c[i * ldc + k] * u[k * ldu + j];
            }
            let d = l[i * ldl + i] + u[j * ldu + j];
            assert!(d != 0.0, "singular Sylvester operator at ({i},{j})");
            c[i * ldc + j] = acc / d;
        }
    }
}

/// Triangular continuous-time Lyapunov equation `L·X + X·Lᵀ = S` with `L`
/// lower triangular and `S` symmetric, overwriting `s` with the symmetric
/// solution `X` in full storage (the paper's `trlya`).
///
/// # Panics
///
/// Panics if `L[i,i] + L[j,j] = 0` for some `(i, j)`.
pub fn dtrlya(n: usize, l: &[f64], ldl: usize, s: &mut [f64], lds: usize) {
    // Solve the lower triangle in dependency order, mirroring as we go.
    for i in 0..n {
        for j in 0..=i {
            let mut acc = s[i * lds + j];
            for k in 0..i {
                acc -= l[i * ldl + k] * s[k * lds + j];
            }
            for k in 0..j {
                acc -= s[i * lds + k] * l[j * ldl + k];
            }
            let d = l[i * ldl + i] + l[j * ldl + j];
            assert!(d != 0.0, "singular Lyapunov operator at ({i},{j})");
            let x = acc / d;
            s[i * lds + j] = x;
            s[j * lds + i] = x;
        }
    }
}

/// LU factorization without pivoting: `A = L·U` with unit-diagonal `L`
/// stored below the diagonal and `U` on/above it (valid for the LA `NS`
/// matrices the language targets).
///
/// # Panics
///
/// Panics on a zero pivot.
pub fn dgetrf_nopiv(n: usize, a: &mut [f64], lda: usize) {
    for k in 0..n {
        let piv = a[k * lda + k];
        assert!(piv != 0.0, "zero pivot at {k}");
        for i in k + 1..n {
            a[i * lda + k] /= piv;
            let lik = a[i * lda + k];
            for j in k + 1..n {
                a[i * lda + j] -= lik * a[k * lda + j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;
    use crate::testgen;

    #[test]
    fn potrf_upper_reconstructs() {
        for n in [1, 2, 3, 5, 8, 13] {
            let s = testgen::spd(n, 100 + n as u64);
            let mut u = s.clone();
            dpotrf(Uplo::Upper, n, u.as_mut_slice(), n);
            let rebuilt = u.transposed().matmul(&u);
            assert!(rebuilt.approx_eq(&s, 1e-10), "n={n}\n{rebuilt}\nvs\n{s}");
            // upper triangular with positive diagonal
            for i in 0..n {
                assert!(u[(i, i)] > 0.0);
                for j in 0..i {
                    assert_eq!(u[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn potrf_lower_reconstructs() {
        for n in [1, 3, 6, 9] {
            let s = testgen::spd(n, 200 + n as u64);
            let mut l = s.clone();
            dpotrf(Uplo::Lower, n, l.as_mut_slice(), n);
            let rebuilt = l.matmul(&l.transposed());
            assert!(rebuilt.approx_eq(&s, 1e-10), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "not positive definite")]
    fn potrf_rejects_indefinite() {
        let mut s = Mat::from_slice(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        dpotrf(Uplo::Upper, 2, s.as_mut_slice(), 2);
    }

    #[test]
    fn trtri_gives_inverse() {
        for uplo in [Uplo::Lower, Uplo::Upper] {
            for n in [1, 2, 4, 7, 10] {
                let t = testgen::well_conditioned_triangular(n, uplo, 300 + n as u64);
                let mut x = t.clone();
                dtrtri(uplo, n, x.as_mut_slice(), n);
                let prod = t.matmul(&x);
                assert!(prod.approx_eq(&Mat::identity(n), 1e-10), "uplo={uplo:?} n={n}\n{prod}");
            }
        }
    }

    #[test]
    fn trsyl_residual_is_small() {
        for (m, n) in [(1, 1), (3, 2), (5, 5), (8, 6)] {
            let l = testgen::well_conditioned_triangular(m, Uplo::Lower, 401);
            let u = testgen::well_conditioned_triangular(n, Uplo::Upper, 402);
            let c0 = testgen::general(m, n, 403);
            let mut x = c0.clone();
            dtrsyl(m, n, l.as_slice(), m, u.as_slice(), n, x.as_mut_slice(), n);
            let residual = l.matmul(&x).add(&x.matmul(&u));
            assert!(residual.approx_eq(&c0, 1e-10), "m={m} n={n}");
        }
    }

    #[test]
    fn trlya_solution_is_symmetric_and_solves() {
        for n in [1, 2, 4, 6, 9] {
            let l = testgen::well_conditioned_triangular(n, Uplo::Lower, 500 + n as u64);
            let s0 = testgen::symmetrize(&testgen::general(n, n, 501), Uplo::Upper);
            let mut x = s0.clone();
            dtrlya(n, l.as_slice(), n, x.as_mut_slice(), n);
            assert!(x.approx_eq(&x.transposed(), 1e-12), "X must be symmetric");
            let residual = l.matmul(&x).add(&x.matmul(&l.transposed()));
            assert!(residual.approx_eq(&s0, 1e-10), "n={n}");
        }
    }

    #[test]
    fn trlya_agrees_with_trsyl() {
        // Lyapunov is Sylvester with U = Lᵀ; the dedicated solver must
        // agree with the general one.
        let n = 7;
        let l = testgen::well_conditioned_triangular(n, Uplo::Lower, 600);
        let s0 = testgen::symmetrize(&testgen::general(n, n, 601), Uplo::Upper);
        let mut via_lya = s0.clone();
        dtrlya(n, l.as_slice(), n, via_lya.as_mut_slice(), n);
        let lt = l.transposed();
        let mut via_syl = s0.clone();
        dtrsyl(n, n, l.as_slice(), n, lt.as_slice(), n, via_syl.as_mut_slice(), n);
        assert!(via_lya.approx_eq(&via_syl, 1e-10));
    }

    #[test]
    fn getrf_reconstructs() {
        for n in [1, 3, 5, 8] {
            // diagonally dominant => no pivoting needed
            let mut a = testgen::general(n, n, 700 + n as u64);
            for i in 0..n {
                a[(i, i)] += n as f64 + 2.0;
            }
            let a0 = a.clone();
            dgetrf_nopiv(n, a.as_mut_slice(), n);
            let l = Mat::from_fn(n, n, |i, j| {
                if i == j {
                    1.0
                } else if i > j {
                    a[(i, j)]
                } else {
                    0.0
                }
            });
            let u = Mat::from_fn(n, n, |i, j| if i <= j { a[(i, j)] } else { 0.0 });
            assert!(l.matmul(&u).approx_eq(&a0, 1e-10), "n={n}");
        }
    }
}
