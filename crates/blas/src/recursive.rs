//! Recursive blocked algorithms in the style of ReLAPACK \[32\] and
//! RECSY \[22\] — two of the paper's baselines.
//!
//! Each routine splits the problem in half, recurses on the diagonal
//! blocks, and glues the halves with level-3 BLAS updates; below
//! `base_size` it falls back to the unblocked LAPACK routine. The
//! `slingen-baselines` crate mirrors these call trees when it generates
//! C-IR for the ReLAPACK/RECSY competitors, and these implementations are
//! their correctness oracle.

use crate::blas3::{dgemm, dsyrk, dtrmm, dtrsm};
use crate::lapack::{dpotrf, dtrlya, dtrsyl, dtrtri};
use crate::{Diag, Side, Trans, Uplo};

/// Recursive Cholesky (ReLAPACK `dpotrf`), upper variant: `Uᵀ·U = S`.
pub fn potrf_recursive(uplo: Uplo, n: usize, s: &mut [f64], lds: usize, base_size: usize) {
    if n <= base_size.max(1) {
        dpotrf(uplo, n, s, lds);
        return;
    }
    let n1 = n / 2;
    let n2 = n - n1;
    match uplo {
        Uplo::Upper => {
            // [ S11 S12 ]   U11ᵀU11 = S11
            // [  .  S22 ]   U11ᵀU12 = S12 ; S22 -= U12ᵀU12 ; U22ᵀU22 = S22
            potrf_recursive(uplo, n1, s, lds, base_size);
            let (top, bottom) = s.split_at_mut(n1 * lds);
            let u11 = copy_block(top, lds, n1);
            let s12 = &mut top[n1..];
            dtrsm(
                Side::Left,
                Uplo::Upper,
                Trans::Yes,
                Diag::NonUnit,
                n1,
                n2,
                1.0,
                &u11,
                n1,
                s12,
                lds,
            );
            let s22 = &mut bottom[n1..];
            dsyrk(Uplo::Upper, Trans::Yes, n2, n1, -1.0, &top[n1..], lds, 1.0, s22, lds);
            potrf_recursive(uplo, n2, s22, lds, base_size);
            // zero the mirrored block for full storage consistency
            for i in 0..n2 {
                for j in 0..n1 {
                    bottom[i * lds + j] = 0.0;
                }
            }
        }
        Uplo::Lower => {
            potrf_recursive(uplo, n1, s, lds, base_size);
            let (top, bottom) = s.split_at_mut(n1 * lds);
            let l11 = copy_block(top, lds, n1);
            // L21: solve L21 L11ᵀ = S21
            dtrsm(
                Side::Right,
                Uplo::Lower,
                Trans::Yes,
                Diag::NonUnit,
                n2,
                n1,
                1.0,
                &l11,
                n1,
                bottom,
                lds,
            );
            let l21 = bottom as &[f64];
            let mut s22_update = vec![0.0; n2 * n2];
            dsyrk(Uplo::Lower, Trans::No, n2, n1, 1.0, l21, lds, 0.0, &mut s22_update, n2);
            for i in 0..n2 {
                for j in 0..=i {
                    bottom[i * lds + n1 + j] -= s22_update[i * n2 + j];
                }
            }
            let s22 = &mut bottom[n1..];
            potrf_recursive(uplo, n2, s22, lds, base_size);
            for i in 0..n1 {
                for j in 0..n2 {
                    top[i * lds + n1 + j] = 0.0;
                }
            }
        }
    }
}

/// Copy an `n × n` block starting at `src[0]` (row stride `ld`) into a
/// dense `n × n` buffer (stride `n`). Used where BLAS calls would otherwise
/// need overlapping borrows of the same allocation.
fn copy_block(src: &[f64], ld: usize, n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        out[i * n..i * n + n].copy_from_slice(&src[i * ld..i * ld + n]);
    }
    out
}

/// Recursive triangular inversion (ReLAPACK `dtrtri`), lower variant:
/// `X = L⁻¹` with `X` lower triangular, in place.
pub fn trtri_recursive(uplo: Uplo, n: usize, t: &mut [f64], ldt: usize, base_size: usize) {
    if n <= base_size.max(1) {
        dtrtri(uplo, n, t, ldt);
        return;
    }
    let n1 = n / 2;
    let n2 = n - n1;
    match uplo {
        Uplo::Lower => {
            // X11 = L11⁻¹ ; X22 = L22⁻¹ ; X21 = -X22 · L21 · X11
            let (top, bottom) = t.split_at_mut(n1 * ldt);
            // X21 = -L22⁻¹ · L21 · L11⁻¹, applied to the original blocks.
            dtrsm(
                Side::Right,
                Uplo::Lower,
                Trans::No,
                Diag::NonUnit,
                n2,
                n1,
                1.0,
                top,
                ldt,
                bottom,
                ldt,
            );
            let l22 = copy_block(&bottom[n1..], ldt, n2);
            dtrsm(
                Side::Left,
                Uplo::Lower,
                Trans::No,
                Diag::NonUnit,
                n2,
                n1,
                -1.0,
                &l22,
                n2,
                bottom,
                ldt,
            );
            trtri_recursive(uplo, n1, top, ldt, base_size);
            let t22 = &mut bottom[n1..];
            trtri_recursive(uplo, n2, t22, ldt, base_size);
        }
        Uplo::Upper => {
            let (top, bottom) = t.split_at_mut(n1 * ldt);
            // X12 = -U11⁻¹ · U12 · U22⁻¹, applied to the original blocks.
            {
                let t12 = &mut top[n1..];
                dtrsm(
                    Side::Right,
                    Uplo::Upper,
                    Trans::No,
                    Diag::NonUnit,
                    n1,
                    n2,
                    1.0,
                    &bottom[n1..],
                    ldt,
                    t12,
                    ldt,
                );
            }
            let u11 = copy_block(top, ldt, n1);
            dtrsm(
                Side::Left,
                Uplo::Upper,
                Trans::No,
                Diag::NonUnit,
                n1,
                n2,
                -1.0,
                &u11,
                n1,
                &mut top[n1..],
                ldt,
            );
            trtri_recursive(uplo, n1, top, ldt, base_size);
            let t22 = &mut bottom[n1..];
            trtri_recursive(uplo, n2, t22, ldt, base_size);
        }
    }
}

/// Recursive triangular Sylvester solver (RECSY style): `L·X + X·U = C`.
#[allow(clippy::too_many_arguments)]
pub fn trsyl_recursive(
    m: usize,
    n: usize,
    l: &[f64],
    ldl: usize,
    u: &[f64],
    ldu: usize,
    c: &mut [f64],
    ldc: usize,
    base_size: usize,
) {
    let base = base_size.max(1);
    if m <= base && n <= base {
        dtrsyl(m, n, l, ldl, u, ldu, c, ldc);
        return;
    }
    if m >= n {
        // split L (rows of X): L = [L11 0; L21 L22]
        let m1 = m / 2;
        let m2 = m - m1;
        trsyl_recursive(m1, n, l, ldl, u, ldu, c, ldc, base_size);
        // C2 -= L21 · X1
        let (x1, c2) = c.split_at_mut(m1 * ldc);
        dgemm(Trans::No, Trans::No, m2, n, m1, -1.0, &l[m1 * ldl..], ldl, x1, ldc, 1.0, c2, ldc);
        trsyl_recursive(m2, n, &l[m1 * ldl + m1..], ldl, u, ldu, c2, ldc, base_size);
    } else {
        // split U (columns of X): U = [U11 U12; 0 U22]
        let n1 = n / 2;
        let n2 = n - n1;
        trsyl_recursive(m, n1, l, ldl, u, ldu, c, ldc, base_size);
        // C2 -= X1 · U12 ; columns n1.. of C
        let mut update = vec![0.0; m * n2];
        dgemm(
            Trans::No,
            Trans::No,
            m,
            n2,
            n1,
            1.0,
            c as &[f64],
            ldc,
            &u[n1..],
            ldu,
            0.0,
            &mut update,
            n2,
        );
        for i in 0..m {
            for j in 0..n2 {
                c[i * ldc + n1 + j] -= update[i * n2 + j];
            }
        }
        trsyl_recursive(m, n2, l, ldl, &u[n1 * ldu + n1..], ldu, &mut c[n1..], ldc, base_size);
    }
}

/// Recursive triangular Lyapunov solver (RECSY style): `L·X + X·Lᵀ = S`
/// with symmetric `S`/`X` in full storage.
pub fn trlya_recursive(
    n: usize,
    l: &[f64],
    ldl: usize,
    s: &mut [f64],
    lds: usize,
    base_size: usize,
) {
    if n <= base_size.max(1) {
        dtrlya(n, l, ldl, s, lds);
        return;
    }
    let n1 = n / 2;
    let n2 = n - n1;
    // X11: L11 X11 + X11 L11ᵀ = S11
    trlya_recursive(n1, l, ldl, s, lds, base_size);
    // X21: L22 X21 + X21 L11ᵀ = S21 - L21 X11
    {
        let (top, bottom) = s.split_at_mut(n1 * lds);
        dgemm(
            Trans::No,
            Trans::No,
            n2,
            n1,
            n1,
            -1.0,
            &l[n1 * ldl..],
            ldl,
            top,
            lds,
            1.0,
            bottom,
            lds,
        );
        // Sylvester with U = L11ᵀ (upper triangular): need L11ᵀ materialized
        let mut l11t = vec![0.0; n1 * n1];
        for i in 0..n1 {
            for j in 0..n1 {
                l11t[i * n1 + j] = l[j * ldl + i];
            }
        }
        trsyl_recursive(n2, n1, &l[n1 * ldl + n1..], ldl, &l11t, n1, bottom, lds, base_size);
    }
    // mirror X21 into X12 (full storage)
    for i in 0..n1 {
        for j in 0..n2 {
            s[i * lds + n1 + j] = s[(n1 + j) * lds + i];
        }
    }
    // X22: L22 X22 + X22 L22ᵀ = S22 - L21 X12 - (L21 X12)ᵀ
    {
        let mut upd = vec![0.0; n2 * n2];
        // L21 · X12  (n2×n1 · n1×n2)
        let x12: Vec<f64> = {
            let mut v = vec![0.0; n1 * n2];
            for i in 0..n1 {
                for j in 0..n2 {
                    v[i * n2 + j] = s[i * lds + n1 + j];
                }
            }
            v
        };
        dgemm(
            Trans::No,
            Trans::No,
            n2,
            n2,
            n1,
            1.0,
            &l[n1 * ldl..],
            ldl,
            &x12,
            n2,
            0.0,
            &mut upd,
            n2,
        );
        for i in 0..n2 {
            for j in 0..n2 {
                s[(n1 + i) * lds + n1 + j] -= upd[i * n2 + j] + upd[j * n2 + i];
            }
        }
    }
    let s22 = &mut s[n1 * lds + n1..];
    trlya_recursive(n2, &l[n1 * ldl + n1..], ldl, s22, lds, base_size);
}

/// Recursive triangular solve used by the ReLAPACK-style baselines:
/// equivalent to [`dtrsm`] but with halving recursion (provided for the
/// baseline call trees; delegates to `dtrsm` at the base).
#[allow(clippy::too_many_arguments)]
pub fn trsm_recursive(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    m: usize,
    n: usize,
    t: &[f64],
    ldt: usize,
    b: &mut [f64],
    ldb: usize,
    base_size: usize,
) {
    let dim = match side {
        Side::Left => m,
        Side::Right => n,
    };
    if dim <= base_size.max(1) {
        dtrsm(side, uplo, trans, Diag::NonUnit, m, n, 1.0, t, ldt, b, ldb);
        return;
    }
    // Only the combination needed by the baselines is specialized; the
    // rest fall back to the unblocked kernel.
    if side == Side::Left && uplo == Uplo::Upper && trans == Trans::Yes {
        // U ᵀ X = B, U upper: forward substitution over row blocks
        let m1 = m / 2;
        let m2 = m - m1;
        trsm_recursive(side, uplo, trans, m1, n, t, ldt, b, ldb, base_size);
        let (x1, b2) = b.split_at_mut(m1 * ldb);
        // B2 -= U12ᵀ X1
        dgemm(Trans::Yes, Trans::No, m2, n, m1, -1.0, &t[m1..], ldt, x1, ldb, 1.0, b2, ldb);
        trsm_recursive(side, uplo, trans, m2, n, &t[m1 * ldt + m1..], ldt, b2, ldb, base_size);
    } else {
        dtrsm(side, uplo, trans, Diag::NonUnit, m, n, 1.0, t, ldt, b, ldb);
    }
}

/// A blocked triangular-matrix multiply wrapper used by baseline call
/// trees (delegates to [`dtrmm`]).
#[allow(clippy::too_many_arguments)]
pub fn trmm_simple(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    m: usize,
    n: usize,
    t: &[f64],
    ldt: usize,
    b: &mut [f64],
    ldb: usize,
) {
    dtrmm(side, uplo, trans, Diag::NonUnit, m, n, 1.0, t, ldt, b, ldb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;
    use crate::testgen;

    #[test]
    fn recursive_potrf_matches_unblocked() {
        for n in [2, 3, 7, 12, 16, 21] {
            for uplo in [Uplo::Upper, Uplo::Lower] {
                let s = testgen::spd(n, 900 + n as u64);
                let mut rec = s.clone();
                potrf_recursive(uplo, n, rec.as_mut_slice(), n, 4);
                let mut unb = s.clone();
                dpotrf(uplo, n, unb.as_mut_slice(), n);
                assert!(rec.approx_eq(&unb, 1e-10), "uplo={uplo:?} n={n}\n{rec}\nvs\n{unb}");
            }
        }
    }

    #[test]
    fn recursive_trtri_matches_unblocked() {
        for n in [2, 5, 9, 16] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                let t = testgen::well_conditioned_triangular(n, uplo, 1000 + n as u64);
                let mut rec = t.clone();
                trtri_recursive(uplo, n, rec.as_mut_slice(), n, 3);
                let mut unb = t.clone();
                dtrtri(uplo, n, unb.as_mut_slice(), n);
                assert!(rec.approx_eq(&unb, 1e-9), "uplo={uplo:?} n={n}");
            }
        }
    }

    #[test]
    fn recursive_trsyl_solves() {
        for (m, n) in [(2, 2), (6, 4), (9, 9), (13, 7)] {
            let l = testgen::well_conditioned_triangular(m, Uplo::Lower, 1101);
            let u = testgen::well_conditioned_triangular(n, Uplo::Upper, 1102);
            let c0 = testgen::general(m, n, 1103);
            let mut x = c0.clone();
            trsyl_recursive(m, n, l.as_slice(), m, u.as_slice(), n, x.as_mut_slice(), n, 3);
            let residual = l.matmul(&x).add(&x.matmul(&u));
            assert!(residual.approx_eq(&c0, 1e-9), "m={m} n={n}");
        }
    }

    #[test]
    fn recursive_trlya_solves() {
        for n in [2, 5, 8, 12] {
            let l = testgen::well_conditioned_triangular(n, Uplo::Lower, 1200 + n as u64);
            let s0 = testgen::symmetrize(&testgen::general(n, n, 1201), Uplo::Upper);
            let mut x = s0.clone();
            trlya_recursive(n, l.as_slice(), n, x.as_mut_slice(), n, 3);
            let residual = l.matmul(&x).add(&x.matmul(&l.transposed()));
            assert!(residual.approx_eq(&s0, 1e-9), "n={n}\n{residual}\nvs\n{s0}");
            assert!(x.approx_eq(&x.transposed(), 1e-10));
        }
    }

    #[test]
    fn recursive_trsm_matches_unblocked() {
        let m = 11;
        let n = 5;
        let t = testgen::well_conditioned_triangular(m, Uplo::Upper, 1301);
        let b0 = testgen::general(m, n, 1302);
        let mut rec = b0.clone();
        trsm_recursive(
            Side::Left,
            Uplo::Upper,
            Trans::Yes,
            m,
            n,
            t.as_slice(),
            m,
            rec.as_mut_slice(),
            n,
            3,
        );
        let mut unb = b0.clone();
        dtrsm(
            Side::Left,
            Uplo::Upper,
            Trans::Yes,
            Diag::NonUnit,
            m,
            n,
            1.0,
            t.as_slice(),
            m,
            unb.as_mut_slice(),
            n,
        );
        assert!(rec.approx_eq(&unb, 1e-10));
        let _ = Mat::zeros(1, 1);
    }
}
