//! A minimal row-major dense matrix used by tests, examples, and the
//! workload generators.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A row-major `rows × cols` matrix of `f64`.
///
/// ```
/// use slingen_blas::Mat;
/// let mut a = Mat::zeros(2, 3);
/// a[(0, 1)] = 5.0;
/// assert_eq!(a[(0, 1)], 5.0);
/// assert_eq!(a.transposed()[(1, 0)], 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Mat {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[f64]) -> Mat {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Mat { rows, cols, data: data.to_vec() }
    }

    /// Build from a function of the index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major backing data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major backing data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The transpose.
    pub fn transposed(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Dense matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "inner dimensions differ");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// `self + other`.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Mat::from_fn(self.rows, self.cols, |i, j| self[(i, j)] + other[(i, j)])
    }

    /// `self - other`.
    pub fn sub(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Mat::from_fn(self.rows, self.cols, |i, j| self[(i, j)] - other[(i, j)])
    }

    /// `alpha * self`.
    pub fn scale(&self, alpha: f64) -> Mat {
        Mat::from_fn(self.rows, self.cols, |i, j| alpha * self[(i, j)])
    }

    /// Max-norm distance to `other`.
    pub fn max_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut d: f64 = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                d = d.max((self[(i, j)] - other[(i, j)]).abs());
            }
        }
        d
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Whether all entries are within `tol` of `other`, scaled by the
    /// magnitude of the operands (a pragmatic mixed absolute/relative
    /// comparison for factorization results).
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        let scale = self.fro_norm().max(other.fro_norm()).max(1.0);
        self.max_diff(other) <= tol * scale
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Mat::from_slice(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Mat::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(a.matmul(&Mat::identity(3)), a);
        assert_eq!(Mat::identity(3).matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_fn(2, 4, |i, j| (i + 10 * j) as f64);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn arithmetic() {
        let a = Mat::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Mat::from_fn(2, 2, |i, j| (i * j) as f64);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.scale(2.0).max_diff(&a.add(&a)), 0.0);
    }

    #[test]
    fn norms_and_comparison() {
        let a = Mat::from_slice(1, 2, &[3.0, 4.0]);
        assert_eq!(a.fro_norm(), 5.0);
        let b = Mat::from_slice(1, 2, &[3.0, 4.0 + 1e-12]);
        assert!(a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&Mat::from_slice(1, 2, &[3.0, 5.0]), 1e-10));
    }
}
