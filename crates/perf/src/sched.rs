//! The dependence-aware port scheduler.
//!
//! Each dynamic instruction is decomposed into unit-slot demands on the
//! machine's resources and issued at the earliest cycle where (a) its
//! sources (registers and memory cells) are ready and (b) its primary
//! resource has a free slot. Completion times propagate through registers
//! and memory, so sequentially dependent divides — the factorization
//! pattern the paper highlights — serialize at the divider's occupancy,
//! while independent work overlaps.
//!
//! Hardware register renaming is modeled by *not* serializing on
//! write-after-write: writing a register simply replaces its ready time.

use crate::machine::{Machine, Resource};
use crate::report::Report;
use slingen_cir::fxhash::FxHashMap;
use slingen_cir::{BinOp, CStmt, Function, Instr, InstrClass};
use slingen_vm::{Event, Monitor};
use std::collections::{BTreeMap, HashMap};

/// How many 128-bit unit-slots a `width`-lane access consumes.
fn mem_units(width: usize, lanes: usize) -> f64 {
    // scalar (1 lane of any width-1 function) = 1 unit; width-2 vector = 1
    // unit (128-bit); width-4 = 2 units (256-bit split into two halves).
    if lanes <= 1 || width <= 2 {
        1.0
    } else {
        2.0
    }
}

#[derive(Debug, Clone, Copy)]
struct Demand {
    resource: Resource,
    units: f64,
    latency: f64,
}

/// Monitor that schedules the instruction stream (see module docs).
#[derive(Debug)]
pub struct Scheduler {
    machine: Machine,
    /// Next-free time (fractional cycles) per resource.
    res_free: BTreeMap<Resource, f64>,
    /// Cumulative units consumed per resource.
    res_units: BTreeMap<Resource, f64>,
    /// Dynamic instruction counts per class.
    counts: BTreeMap<InstrClass, u64>,
    sready: HashMap<usize, f64>,
    vready: HashMap<usize, f64>,
    cellready: HashMap<(usize, i64), f64>,
    makespan: f64,
    flops: u64,
    instructions: u64,
    /// Cycle budget: once the makespan exceeds it the run is abandoned
    /// (the autotuner's early cutoff for dominated variants).
    budget: Option<f64>,
    exceeded: bool,
    /// Memoized demand tapes, keyed by static-instruction identity.
    ///
    /// [`demands`] is a pure function of `(instr, width)`, and every
    /// [`Event`] borrows its instruction from a [`Function`] that outlives
    /// the run — so the address of an `Instr` identifies one static
    /// instruction (and thereby its function's width) for the scheduler's
    /// whole lifetime. A rolled loop body or repeatedly-called kernel
    /// block is decomposed once and its tape replayed on every later
    /// dynamic execution, instead of re-matching and re-allocating a
    /// `Vec<Demand>` per event.
    demand_memo: FxHashMap<usize, Box<[Demand]>>,
}

impl Scheduler {
    /// A scheduler for the given machine.
    pub fn new(machine: Machine) -> Self {
        Scheduler::with_budget(machine, None)
    }

    /// A scheduler that requests an early stop once the modeled makespan
    /// exceeds `budget` cycles. The makespan is monotone, so exceeding the
    /// budget mid-run proves the final estimate would too — abandoning the
    /// variant is sound pruning, not approximation.
    pub fn with_budget(machine: Machine, budget: Option<f64>) -> Self {
        Scheduler {
            machine,
            res_free: BTreeMap::new(),
            res_units: BTreeMap::new(),
            counts: BTreeMap::new(),
            sready: HashMap::new(),
            vready: HashMap::new(),
            cellready: HashMap::new(),
            makespan: 0.0,
            flops: 0,
            instructions: 0,
            budget,
            exceeded: false,
            demand_memo: FxHashMap::default(),
        }
    }

    /// Whether the cycle budget was exceeded (the run was cut short and
    /// the report would be a lower bound, not an estimate).
    pub fn budget_exceeded(&self) -> bool {
        self.exceeded
    }

    fn sources_ready(&self, ev: &Event<'_>) -> f64 {
        let mut t: f64 = 0.0;
        ev.instr.for_each_sreg_read(|r| {
            t = t.max(self.sready.get(&r.0).copied().unwrap_or(0.0));
        });
        ev.instr.for_each_vreg_read(|r| {
            t = t.max(self.vready.get(&r.0).copied().unwrap_or(0.0));
        });
        for cell in &ev.reads {
            t = t.max(self.cellready.get(cell).copied().unwrap_or(0.0));
        }
        t
    }

    /// Final report.
    pub fn finish(self) -> Report {
        Report::new(
            self.machine,
            self.makespan,
            self.flops,
            self.instructions,
            self.res_units,
            self.counts,
        )
    }
}

/// Decompose one instruction into its resource demands. The first
/// demand is the *primary* one (its latency defines the result's
/// availability); secondary demands add pressure but not latency. This
/// single decomposition drives both the dynamic scheduler and the static
/// [`pressure_lower_bound`], so the bound cannot drift from the model.
fn demands(m: &Machine, instr: &Instr, width: usize) -> Vec<Demand> {
    match instr {
        Instr::SLoad { .. } => {
            vec![Demand { resource: Resource::Load, units: 1.0, latency: m.load_latency }]
        }
        Instr::SStore { .. } => {
            vec![Demand { resource: Resource::Store, units: 1.0, latency: m.store_latency }]
        }
        Instr::VLoad { lanes, .. } => {
            let active = lanes.iter().flatten().count();
            if contiguous(lanes) {
                vec![Demand {
                    resource: Resource::Load,
                    units: mem_units(width, active),
                    latency: m.load_latency,
                }]
            } else {
                // strided/gathered: one scalar load per lane plus the
                // packing shuffles the Loader would emit.
                let mut d = vec![Demand {
                    resource: Resource::Load,
                    units: active as f64,
                    latency: m.load_latency,
                }];
                if active > 1 {
                    d.push(Demand {
                        resource: Resource::Shuffle,
                        units: (active - 1) as f64,
                        latency: m.shuffle_latency,
                    });
                }
                d
            }
        }
        Instr::VStore { lanes, .. } => {
            let active = lanes.iter().flatten().count();
            if contiguous(lanes) {
                vec![Demand {
                    resource: Resource::Store,
                    units: mem_units(width, active),
                    latency: m.store_latency,
                }]
            } else {
                let mut d = vec![Demand {
                    resource: Resource::Store,
                    units: active as f64,
                    latency: m.store_latency,
                }];
                if active > 1 {
                    d.push(Demand {
                        resource: Resource::Shuffle,
                        units: (active - 1) as f64,
                        latency: m.shuffle_latency,
                    });
                }
                d
            }
        }
        Instr::SBin { op, .. } | Instr::VBin { op, .. } => {
            let vector = matches!(instr, Instr::VBin { .. }) && width > 1;
            match op {
                BinOp::Mul => {
                    vec![Demand { resource: Resource::FMul, units: 1.0, latency: m.fmul_latency }]
                }
                BinOp::Add | BinOp::Sub => {
                    vec![Demand { resource: Resource::FAdd, units: 1.0, latency: m.fadd_latency }]
                }
                BinOp::Div => {
                    let c = if vector { m.div_vector_cycles } else { m.div_scalar_cycles };
                    vec![Demand { resource: Resource::Divider, units: c, latency: c }]
                }
            }
        }
        Instr::SFma { .. } | Instr::VFma { .. } => {
            // fused ops issue on the multiply port (Haswell-style)
            vec![Demand { resource: Resource::FMul, units: 1.0, latency: m.fma_latency }]
        }
        Instr::SSqrt { .. } => {
            let c = m.div_scalar_cycles;
            vec![Demand { resource: Resource::Divider, units: c, latency: c }]
        }
        Instr::SMov { .. } | Instr::VMov { .. } => {
            vec![Demand { resource: Resource::Mov, units: 1.0, latency: m.mov_latency }]
        }
        Instr::VBroadcast { .. } => {
            vec![Demand { resource: Resource::Shuffle, units: 1.0, latency: m.shuffle_latency }]
        }
        Instr::VShuffle { .. } | Instr::VExtract { .. } => {
            vec![Demand { resource: Resource::Shuffle, units: 1.0, latency: m.shuffle_latency }]
        }
        Instr::VBlend { .. } => {
            vec![Demand { resource: Resource::Blend, units: 1.0, latency: m.blend_latency }]
        }
        Instr::VReduceAdd { .. } => {
            // log2(width) shuffle+add pairs
            let steps = (width.max(2) as f64).log2().ceil();
            vec![
                Demand { resource: Resource::FAdd, units: steps, latency: m.fadd_latency * steps },
                Demand { resource: Resource::Shuffle, units: steps, latency: m.shuffle_latency },
            ]
        }
        Instr::Call { .. } => vec![Demand {
            resource: Resource::Frontend,
            units: m.call_overhead_cycles,
            latency: m.call_overhead_cycles,
        }],
    }
}

/// Accumulated static pressure for [`pressure_lower_bound`].
#[derive(Default)]
struct Pressure {
    /// Trip-count-weighted unit totals per resource.
    units: BTreeMap<Resource, f64>,
    /// Largest per-event `units/capacity − latency` excess per resource
    /// (unweighted): the slack a final event could hide behind its own
    /// occupancy.
    excess: BTreeMap<Resource, f64>,
    /// Largest single-event latency.
    max_latency: f64,
}

fn pressure_walk(stmts: &[CStmt], mult: f64, width: usize, m: &Machine, acc: &mut Pressure) {
    for s in stmts {
        match s {
            CStmt::I(ins) => {
                for d in demands(m, ins, width) {
                    *acc.units.entry(d.resource).or_insert(0.0) += mult * d.units;
                    let cap = m.capacity(d.resource);
                    let e = (d.units / cap - d.latency).max(0.0);
                    let slot = acc.excess.entry(d.resource).or_insert(0.0);
                    if e > *slot {
                        *slot = e;
                    }
                    if d.latency > acc.max_latency {
                        acc.max_latency = d.latency;
                    }
                }
            }
            CStmt::For { lo, hi, step, body, .. } => {
                // Only constant-bound loops contribute; bounds that
                // depend on an outer induction variable (triangular
                // loops) are skipped — their body runs ≥ 0 times, so
                // omitting it keeps the bound a lower bound.
                if let (Some(l), Some(h)) = (lo.as_constant(), hi.as_constant()) {
                    let trips = ((h - l).max(0) + step - 1) / step;
                    if trips > 0 {
                        pressure_walk(body, mult * trips as f64, width, m, acc);
                    }
                }
            }
            CStmt::If { .. } => {
                // Which branch runs is data-dependent; either runs ≥ 0
                // times, so skipping both is sound for a lower bound.
            }
        }
    }
}

/// A cheap, sound lower bound on the makespan [`Scheduler`] would report
/// for `f`: the best of the per-resource throughput bounds and the
/// largest single-instruction latency, from one static walk of the body
/// (no VM execution, no dependence tracking).
///
/// Soundness of the throughput bound per resource `R`: the scheduler
/// advances `R`'s next-free time by `units/capacity` per event, so the
/// *last* event on `R` issues no earlier than `total_units/capacity −
/// units_last/capacity`, and the makespan covers its completion at
/// `issue + latency_last`. Subtracting the largest per-event
/// `units/capacity − latency` excess (clamped at 0) therefore keeps the
/// bound below any possible makespan regardless of which event is last
/// (the clamp matters for [`Instr::VReduceAdd`]'s shuffle leg, whose
/// occupancy exceeds its latency).
///
/// The autotuner compares this bound against the incumbent's cycle
/// budget: `pressure_lower_bound(f) > budget` proves the budgeted VM run
/// would be abandoned, so the variant can be discarded without executing
/// it ([`crate::measure_budgeted`]'s strict `makespan > budget` cutoff).
pub fn pressure_lower_bound(f: &Function, machine: &Machine) -> f64 {
    let mut acc = Pressure::default();
    pressure_walk(&f.body, 1.0, f.width, machine, &mut acc);
    let mut lb = acc.max_latency;
    for (r, &u) in &acc.units {
        let cap = machine.capacity(*r);
        let e = acc.excess.get(r).copied().unwrap_or(0.0);
        lb = lb.max(u / cap - e);
    }
    lb
}

fn contiguous(lanes: &[Option<i64>]) -> bool {
    let active = lanes.iter().take_while(|l| l.is_some()).count();
    lanes[..active].iter().enumerate().all(|(i, l)| *l == Some(i as i64))
        && lanes[active..].iter().all(|l| l.is_none())
        && active > 0
}

impl Monitor for Scheduler {
    fn event(&mut self, ev: &Event<'_>) {
        self.instructions += 1;
        self.flops += ev.instr.flops(ev.width);
        *self.counts.entry(ev.instr.class()).or_insert(0) += 1;

        let ready = self.sources_ready(ev);
        let Scheduler { machine, demand_memo, res_free, res_units, .. } = self;
        let dem: &[Demand] = demand_memo
            .entry(ev.instr as *const Instr as usize)
            .or_insert_with(|| demands(machine, ev.instr, ev.width).into_boxed_slice());
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            dem.len(),
            demands(machine, ev.instr, ev.width).len(),
            "demand tape replay diverged from a fresh decomposition"
        );

        // issue on the primary resource
        let primary = dem[0];
        let free = res_free.get(&primary.resource).copied().unwrap_or(0.0);
        let issue = ready.max(free);
        let cap = machine.capacity(primary.resource);
        res_free.insert(primary.resource, issue + primary.units / cap);
        *res_units.entry(primary.resource).or_insert(0.0) += primary.units;
        let mut done = issue + primary.latency;

        // secondary demands occupy their resources and may delay completion
        for d in &dem[1..] {
            let free = res_free.get(&d.resource).copied().unwrap_or(0.0);
            let s_issue = issue.max(free);
            let cap = machine.capacity(d.resource);
            res_free.insert(d.resource, s_issue + d.units / cap);
            *res_units.entry(d.resource).or_insert(0.0) += d.units;
            done = done.max(s_issue + d.latency);
        }

        if let Some(r) = ev.instr.sreg_write() {
            self.sready.insert(r.0, done);
        }
        if let Some(r) = ev.instr.vreg_write() {
            self.vready.insert(r.0, done);
        }
        for cell in &ev.writes {
            self.cellready.insert(*cell, done);
        }
        self.makespan = self.makespan.max(done);
        if let Some(b) = self.budget {
            if self.makespan > b {
                self.exceeded = true;
            }
        }
    }

    fn should_stop(&self) -> bool {
        self.exceeded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use slingen_cir::{Affine, BufKind, FunctionBuilder, MemRef};
    use slingen_vm::BufferSet;

    fn run(f: &slingen_cir::Function, bufs: &mut BufferSet) -> Report {
        crate::measure(f, bufs, None, &Machine::sandy_bridge()).unwrap()
    }

    /// Independent multiplies stream at 1/cycle; a dependent chain pays the
    /// 5-cycle latency each.
    #[test]
    fn independent_vs_dependent_multiplies() {
        // independent: 64 multiplies on distinct registers
        let mut b = FunctionBuilder::new("ind", 1);
        let o = b.buffer("o", 64, BufKind::ParamOut);
        let mut regs = Vec::new();
        for _ in 0..64 {
            regs.push(b.sbin(slingen_cir::BinOp::Mul, 1.5, 2.5));
        }
        for (i, r) in regs.iter().enumerate() {
            b.sstore(*r, MemRef::new(o, i as i64));
        }
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        let ind = run(&f, &mut bufs);

        // dependent: 64 multiplies in one chain
        let mut b = FunctionBuilder::new("dep", 1);
        let o = b.buffer("o", 1, BufKind::ParamOut);
        let mut acc = b.smov(1.0);
        for _ in 0..64 {
            acc = b.sbin(slingen_cir::BinOp::Mul, acc, 1.001);
        }
        b.sstore(acc, MemRef::new(o, 0));
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        let dep = run(&f, &mut bufs);

        assert!(
            dep.cycles > ind.cycles * 3.0,
            "dependent chain ({}) must be much slower than independent ({})",
            dep.cycles,
            ind.cycles
        );
        assert!(ind.cycles >= 64.0, "64 multiplies need >= 64 cycles on one port");
    }

    /// A fused multiply-add chain is modeled faster than the equivalent
    /// mul+add chain: one FMul-port issue at fma latency instead of a
    /// mul+add latency sum per link, and no FAdd pressure at all.
    #[test]
    fn fma_chain_beats_mul_add_chain() {
        let chain = |fused: bool| {
            let mut b = FunctionBuilder::new("ch", 1);
            let o = b.buffer("o", 1, BufKind::ParamOut);
            let mut acc = b.smov(1.0);
            for _ in 0..32 {
                acc = if fused {
                    b.sfma(slingen_cir::FmaKind::MulAdd, acc, 1.001, 0.5)
                } else {
                    let m = b.sbin(slingen_cir::BinOp::Mul, acc, 1.001);
                    b.sbin(slingen_cir::BinOp::Add, m, 0.5)
                };
            }
            b.sstore(acc, MemRef::new(o, 0));
            let f = b.finish();
            let mut bufs = BufferSet::for_function(&f);
            crate::measure(&f, &mut bufs, None, &Machine::from_target(slingen_cir::Target::Avx2Fma))
                .unwrap()
        };
        let fused = chain(true);
        let two_op = chain(false);
        // chain of 32: fused ~= 32*3 cycles (fma completes in the add
        // latency), two-op ~= 32*(5+3)
        assert!(
            fused.cycles < two_op.cycles,
            "fma chain ({}) must beat mul+add chain ({})",
            fused.cycles,
            two_op.cycles
        );
        assert!(fused.cycles >= 32.0 * 3.0);
        assert_eq!(fused.flops, two_op.flops, "fma counts both flops");
        assert_eq!(fused.count(slingen_cir::InstrClass::Fma), 32);
    }

    /// Sequentially dependent divisions serialize at the divider occupancy
    /// (the paper's small-size bottleneck).
    #[test]
    fn division_chains_dominate() {
        let mut b = FunctionBuilder::new("div", 1);
        let o = b.buffer("o", 1, BufKind::ParamOut);
        let mut acc = b.smov(1.0e9);
        for _ in 0..8 {
            acc = b.sbin(slingen_cir::BinOp::Div, acc, 1.5);
        }
        b.sstore(acc, MemRef::new(o, 0));
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        let rep = run(&f, &mut bufs);
        assert!(rep.cycles >= 8.0 * 22.0, "8 chained divs >= 176 cycles, got {}", rep.cycles);
        assert_eq!(rep.bottleneck(), Resource::Divider);
    }

    /// Vector loads limited by the 2×128-bit load units: at most one
    /// 256-bit load per cycle.
    #[test]
    fn load_throughput_bound() {
        let mut b = FunctionBuilder::new("ld", 4);
        let x = b.buffer("x", 512, BufKind::ParamIn);
        let o = b.buffer("o", 4, BufKind::ParamOut);
        let mut last = None;
        for i in 0..128 {
            last = Some(b.vload_contig(MemRef::new(x, (i * 4) as i64)));
        }
        b.vstore_contig(last.unwrap(), MemRef::new(o, 0));
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        let rep = run(&f, &mut bufs);
        assert!(rep.cycles >= 128.0, "128 256-bit loads need >= 128 cycles, got {}", rep.cycles);
        assert_eq!(rep.bottleneck(), Resource::Load);
    }

    /// Strided (vertical) accesses cost more than contiguous ones.
    #[test]
    fn strided_loads_cost_more() {
        let make = |strided: bool| {
            let mut b = FunctionBuilder::new("s", 4);
            let x = b.buffer("x", 256, BufKind::ParamIn);
            let o = b.buffer("o", 4, BufKind::ParamOut);
            let mut last = None;
            for i in 0..32 {
                let lanes = if strided {
                    vec![Some(0), Some(8), Some(16), Some(24)]
                } else {
                    vec![Some(0), Some(1), Some(2), Some(3)]
                };
                last = Some(b.vload(MemRef::new(x, (i * 4) as i64), lanes));
            }
            b.vstore_contig(last.unwrap(), MemRef::new(o, 0));
            let f = b.finish();
            let mut bufs = BufferSet::for_function(&f);
            run(&f, &mut bufs).cycles
        };
        assert!(make(true) > 1.5 * make(false));
    }

    /// Store-to-load dependences serialize through memory cells.
    #[test]
    fn memory_dependences_tracked() {
        let mut b = FunctionBuilder::new("mem", 1);
        let t = b.buffer("t", 1, BufKind::ParamInOut);
        // chain: load, add, store, repeated — every iteration depends on
        // the previous through t[0]
        for _ in 0..16 {
            let r = b.sload(MemRef::new(t, 0));
            let a = b.sbin(slingen_cir::BinOp::Add, r, 1.0);
            b.sstore(a, MemRef::new(t, 0));
        }
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        let rep = run(&f, &mut bufs);
        // each round trip >= load latency + add latency + store latency
        assert!(
            rep.cycles >= 16.0 * (4.0 + 3.0),
            "memory chain must serialize, got {}",
            rep.cycles
        );
    }

    /// A cycle budget abandons the run as soon as the makespan exceeds it;
    /// an unexceeded budget returns the same report as no budget.
    #[test]
    fn budget_cutoff_abandons_dominated_runs() {
        let mut b = FunctionBuilder::new("div", 1);
        let o = b.buffer("o", 1, BufKind::ParamOut);
        let mut acc = b.smov(1.0e9);
        for _ in 0..8 {
            acc = b.sbin(slingen_cir::BinOp::Div, acc, 1.5);
        }
        b.sstore(acc, MemRef::new(o, 0));
        let f = b.finish();

        let mut bufs = BufferSet::for_function(&f);
        let full = crate::measure(&f, &mut bufs, None, &Machine::sandy_bridge()).unwrap();

        let mut bufs = BufferSet::for_function(&f);
        let cut =
            crate::measure_budgeted(&f, &mut bufs, None, &Machine::sandy_bridge(), Some(50.0))
                .unwrap();
        assert!(cut.is_none(), "8 chained divs must blow a 50-cycle budget");

        let mut bufs = BufferSet::for_function(&f);
        let kept = crate::measure_budgeted(
            &f,
            &mut bufs,
            None,
            &Machine::sandy_bridge(),
            Some(full.cycles + 1.0),
        )
        .unwrap()
        .expect("budget above the true cost must not trigger");
        assert_eq!(kept.cycles, full.cycles);
        assert_eq!(kept.instructions, full.instructions);
    }

    /// Calls pay the configured interface overhead.
    #[test]
    fn call_overhead_charged() {
        use slingen_cir::Instr;
        use slingen_vm::KernelLib;
        let mut lib = KernelLib::new();
        let mut kb = FunctionBuilder::new("noop", 1);
        kb.buffer("a", 1, BufKind::ParamInOut);
        lib.register(kb.finish());
        let mut b = FunctionBuilder::new("caller", 1);
        let a = b.buffer("a", 1, BufKind::ParamInOut);
        for _ in 0..4 {
            b.instr(Instr::Call { kernel: "noop".into(), bufs: vec![a], ints: vec![] });
        }
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        let rep = crate::measure(&f, &mut bufs, Some(&lib), &Machine::sandy_bridge()).unwrap();
        assert!(rep.cycles >= 4.0 * 120.0, "4 calls >= 480 cycles, got {}", rep.cycles);
    }

    /// Loop-var-dependent addressing resolves per iteration.
    #[test]
    fn rolled_loops_schedule_each_iteration() {
        let mut b = FunctionBuilder::new("loop", 4);
        let x = b.buffer("x", 64, BufKind::ParamIn);
        let y = b.buffer("y", 64, BufKind::ParamInOut);
        let i = b.begin_for(0, 64, 4);
        let vx = b.vload_contig(MemRef::new(x, Affine::var(i)));
        let vy = b.vload_contig(MemRef::new(y, Affine::var(i)));
        let s = b.vbin(slingen_cir::BinOp::Add, vx, vy);
        b.vstore_contig(s, MemRef::new(y, Affine::var(i)));
        b.end_for();
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        let rep = run(&f, &mut bufs);
        assert_eq!(rep.flops, 64);
        assert!(rep.cycles >= 16.0);
        assert!(rep.flops_per_cycle() <= 8.0);
    }
}
