//! Measurement reports: cycles, bottlenecks, issue rates (paper Table 4).

use crate::machine::{Machine, Resource};
use slingen_cir::InstrClass;
use std::collections::BTreeMap;
use std::fmt;

/// A wall-clock observation of the same kernel on real hardware,
/// attached to a modeled [`Report`] by the measured-autotuning path.
/// `cycles` is the median-of-min TSC cycle estimate per call, `ns` the
/// same sample converted through the measured TSC frequency, and `reps`
/// the number of timing repetitions that produced the median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredTime {
    /// Median-of-min cycles per kernel call (TSC ticks on x86).
    pub cycles: f64,
    /// The same estimate in nanoseconds.
    pub ns: f64,
    /// Number of timing repetitions behind the median.
    pub reps: u32,
}

/// The result of measuring one function execution.
#[derive(Debug, Clone)]
pub struct Report {
    machine: Machine,
    /// Estimated execution time in cycles.
    pub cycles: f64,
    /// Double-precision flops performed.
    pub flops: u64,
    /// Dynamic instruction count.
    pub instructions: u64,
    res_units: BTreeMap<Resource, f64>,
    counts: BTreeMap<InstrClass, u64>,
    /// Hardware timing for this kernel, when the measured-autotuning
    /// path ran it. `None` for the model-only flow.
    pub measured: Option<MeasuredTime>,
}

impl Report {
    pub(crate) fn new(
        machine: Machine,
        cycles: f64,
        flops: u64,
        instructions: u64,
        res_units: BTreeMap<Resource, f64>,
        counts: BTreeMap<InstrClass, u64>,
    ) -> Report {
        Report { machine, cycles, flops, instructions, res_units, counts, measured: None }
    }

    /// Attach a hardware timing observation (builder style).
    pub fn with_measured(mut self, m: MeasuredTime) -> Report {
        self.measured = Some(m);
        self
    }

    /// Measured performance in flops per cycle, when hardware timing is
    /// available.
    pub fn measured_flops_per_cycle(&self) -> Option<f64> {
        let m = self.measured?;
        if m.cycles == 0.0 {
            None
        } else {
            Some(self.flops as f64 / m.cycles)
        }
    }

    /// Performance in flops per cycle (the paper's y-axis).
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.flops as f64 / self.cycles
        }
    }

    /// Lower bound on cycles imposed by one resource alone.
    pub fn resource_cycles(&self, r: Resource) -> f64 {
        self.res_units.get(&r).copied().unwrap_or(0.0) / self.machine.capacity(r)
    }

    /// The resource with the largest cycle lower bound — the hardware
    /// bottleneck in the sense of the paper's ERM analysis.
    pub fn bottleneck(&self) -> Resource {
        Resource::ALL
            .iter()
            .copied()
            .max_by(|a, b| {
                self.resource_cycles(*a)
                    .partial_cmp(&self.resource_cycles(*b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(Resource::FAdd)
    }

    /// Utilization of a resource relative to the whole execution.
    pub fn utilization(&self, r: Resource) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.resource_cycles(r) / self.cycles
        }
    }

    /// Dynamic count for an instruction class.
    pub fn count(&self, class: InstrClass) -> u64 {
        self.counts.get(&class).copied().unwrap_or(0)
    }

    /// Ratio of issued shuffles (blends) to total issued instructions
    /// *excluding loads and stores* — the "issue rate" column of Table 4.
    pub fn issue_rate(&self, class: InstrClass) -> f64 {
        let non_mem: u64 = self
            .counts
            .iter()
            .filter(|(c, _)| !matches!(c, InstrClass::Load | InstrClass::Store))
            .map(|(_, n)| *n)
            .sum();
        if non_mem == 0 {
            0.0
        } else {
            self.count(class) as f64 / non_mem as f64
        }
    }

    /// Combined shuffle + blend issue rate (Table 4's third column).
    pub fn shuffle_blend_issue_rate(&self) -> f64 {
        self.issue_rate(InstrClass::Shuffle) + self.issue_rate(InstrClass::Blend)
    }

    /// Achievable peak performance (flops/cycle) when the pressure on `r`
    /// is taken into account — Table 4's "perf limit" columns: the best
    /// performance possible given that `r` must issue everything the
    /// program asked of it.
    pub fn perf_limit(&self, r: Resource) -> f64 {
        let peak = self.machine.peak_flops_per_cycle();
        let fp_cycles =
            self.resource_cycles(Resource::FMul).max(self.resource_cycles(Resource::FAdd));
        let r_cycles = self.resource_cycles(r);
        if r_cycles <= fp_cycles || r_cycles == 0.0 {
            // the resource never outweighs the FP ports: full peak remains
            // achievable
            peak
        } else {
            peak * fp_cycles / r_cycles
        }
    }

    /// The machine this report was measured on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Serialize everything except the machine into one line of the
    /// persistent-cache wire format. Floats are written as exact IEEE-754
    /// bit patterns (hex), so a round trip through
    /// [`Report::from_wire`] reproduces the report bit-for-bit. The
    /// machine itself is *not* persisted — it is part of the cache key,
    /// so the loader always re-supplies the identical model.
    pub fn to_wire(&self) -> String {
        use std::fmt::Write;
        let mut s = format!(
            "v1 {:016x} {} {} R{}",
            self.cycles.to_bits(),
            self.flops,
            self.instructions,
            self.res_units.len()
        );
        for (r, v) in &self.res_units {
            let _ = write!(s, " {}={:016x}", r.wire_name(), v.to_bits());
        }
        let _ = write!(s, " C{}", self.counts.len());
        for (c, n) in &self.counts {
            let _ = write!(s, " {c}={n}");
        }
        // Hardware timing is an optional trailing section: reports
        // without it serialize to exactly the original v1 line, so
        // model-only caches stay byte-identical across versions.
        if let Some(m) = self.measured {
            let _ = write!(s, " M {:016x} {:016x} {}", m.cycles.to_bits(), m.ns.to_bits(), m.reps);
        }
        s
    }

    /// Parse a [`Report::to_wire`] line back, measured-on `machine`.
    /// Returns `None` on any malformed token — the persistent cache
    /// treats that as a corrupt entry, never as partial data.
    pub fn from_wire(machine: Machine, s: &str) -> Option<Report> {
        let mut toks = s.split(' ');
        if toks.next()? != "v1" {
            return None;
        }
        let cycles = f64::from_bits(u64::from_str_radix(toks.next()?, 16).ok()?);
        let flops: u64 = toks.next()?.parse().ok()?;
        let instructions: u64 = toks.next()?.parse().ok()?;
        let nres: usize = toks.next()?.strip_prefix('R')?.parse().ok()?;
        let mut res_units = BTreeMap::new();
        for _ in 0..nres {
            let (name, bits) = toks.next()?.split_once('=')?;
            let r = Resource::parse_wire(name)?;
            res_units.insert(r, f64::from_bits(u64::from_str_radix(bits, 16).ok()?));
        }
        let ncls: usize = toks.next()?.strip_prefix('C')?.parse().ok()?;
        let mut counts = BTreeMap::new();
        for _ in 0..ncls {
            let (name, n) = toks.next()?.split_once('=')?;
            counts.insert(InstrClass::parse(name)?, n.parse().ok()?);
        }
        let measured = match toks.next() {
            None => None,
            Some("M") => {
                let cycles = f64::from_bits(u64::from_str_radix(toks.next()?, 16).ok()?);
                let ns = f64::from_bits(u64::from_str_radix(toks.next()?, 16).ok()?);
                let reps: u32 = toks.next()?.parse().ok()?;
                Some(MeasuredTime { cycles, ns, reps })
            }
            Some(_) => return None, // trailing garbage: corrupt
        };
        if toks.next().is_some() {
            return None; // trailing garbage: corrupt
        }
        let mut r = Report::new(machine, cycles, flops, instructions, res_units, counts);
        r.measured = measured;
        Some(r)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:.0} cycles, {} flops, {:.2} f/c (peak {:.0}), {} instrs",
            self.cycles,
            self.flops,
            self.flops_per_cycle(),
            self.machine.peak_flops_per_cycle(),
            self.instructions
        )?;
        writeln!(f, "bottleneck: {}", self.bottleneck())?;
        for r in Resource::ALL {
            let cyc = self.resource_cycles(r);
            if cyc > 0.0 {
                writeln!(
                    f,
                    "  {:>14}: {:8.1} cycles ({:4.1}%)",
                    r.label(),
                    cyc,
                    100.0 * self.utilization(r)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(units: &[(Resource, f64)], flops: u64, cycles: f64) -> Report {
        let mut res_units = BTreeMap::new();
        for (r, u) in units {
            res_units.insert(*r, *u);
        }
        Report::new(Machine::sandy_bridge(), cycles, flops, 100, res_units, BTreeMap::new())
    }

    #[test]
    fn flops_per_cycle_math() {
        let r = report_with(&[], 800, 100.0);
        assert_eq!(r.flops_per_cycle(), 8.0);
    }

    #[test]
    fn bottleneck_is_max_resource_bound() {
        let r = report_with(
            &[(Resource::FMul, 10.0), (Resource::Load, 50.0), (Resource::Divider, 30.0)],
            100,
            60.0,
        );
        // load: 50 units / 2 per cycle = 25 cycles; divider: 30; fmul: 10
        assert_eq!(r.bottleneck(), Resource::Divider);
    }

    #[test]
    fn perf_limit_capped_at_peak() {
        let r = report_with(&[(Resource::FMul, 1.0)], 1_000_000, 10.0);
        assert_eq!(r.perf_limit(Resource::Blend), 8.0);
    }

    #[test]
    fn perf_limit_shrinks_under_shuffle_pressure() {
        // 100 fmul units and 200 shuffle units: shuffles bound at 200
        // cycles vs fp at 100 → limit = flops / 200
        let r = report_with(&[(Resource::FMul, 100.0), (Resource::Shuffle, 200.0)], 800, 250.0);
        assert_eq!(r.perf_limit(Resource::Shuffle), 4.0);
        assert_eq!(r.perf_limit(Resource::Blend), 8.0);
    }

    #[test]
    fn wire_round_trip_is_bit_exact() {
        let mut res_units = BTreeMap::new();
        res_units.insert(Resource::FMul, 10.125);
        res_units.insert(Resource::Divider, 0.1 + 0.2); // non-representable sum
        let mut counts = BTreeMap::new();
        counts.insert(InstrClass::Fma, 42u64);
        counts.insert(InstrClass::Load, 7);
        let r = Report::new(Machine::sandy_bridge(), 123.456, 800, 900, res_units, counts);
        let wire = r.to_wire();
        let back = Report::from_wire(Machine::sandy_bridge(), &wire).expect("round trip");
        assert_eq!(back.cycles.to_bits(), r.cycles.to_bits());
        assert_eq!(back.flops, r.flops);
        assert_eq!(back.instructions, r.instructions);
        assert_eq!(back.count(InstrClass::Fma), 42);
        assert_eq!(
            back.resource_cycles(Resource::Divider).to_bits(),
            r.resource_cycles(Resource::Divider).to_bits()
        );
        assert_eq!(back.to_wire(), wire, "re-serialization is stable");
    }

    #[test]
    fn wire_rejects_malformed_lines() {
        for bad in [
            "",
            "v2 0 0 0 R0 C0",
            "v1 zz 0 0 R0 C0",
            "v1 0 0 0 R1 C0",
            "v1 0 0 0 R1 bogus=0 C0",
            "v1 0 0 0 R0 C1 nosuchclass=3",
            "v1 0 0 0 R0 C0 trailing",
            "v1 0 0 0 R0 C0 M",
            "v1 0 0 0 R0 C0 M 0",
            "v1 0 0 0 R0 C0 M 0 0",
            "v1 0 0 0 R0 C0 M zz 0 3",
            "v1 0 0 0 R0 C0 M 0 0 3 extra",
        ] {
            assert!(Report::from_wire(Machine::sandy_bridge(), bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn wire_measured_section_round_trips_and_is_optional() {
        let base = report_with(&[(Resource::FMul, 10.0)], 800, 100.0);
        let plain_wire = base.to_wire();
        assert!(!plain_wire.contains(" M "), "no measured section when absent");

        let m = MeasuredTime { cycles: 123.75, ns: 41.25, reps: 9 };
        let measured = base.clone().with_measured(m);
        let wire = measured.to_wire();
        assert!(wire.starts_with(&plain_wire), "measured section is a pure suffix");
        let back = Report::from_wire(Machine::sandy_bridge(), &wire).expect("round trip");
        let got = back.measured.expect("measured survives the wire");
        assert_eq!(got.cycles.to_bits(), m.cycles.to_bits());
        assert_eq!(got.ns.to_bits(), m.ns.to_bits());
        assert_eq!(got.reps, m.reps);
        assert_eq!(back.to_wire(), wire, "re-serialization is stable");

        let plain_back = Report::from_wire(Machine::sandy_bridge(), &plain_wire).unwrap();
        assert!(plain_back.measured.is_none());
    }

    #[test]
    fn issue_rate_excludes_memory() {
        let mut counts = BTreeMap::new();
        counts.insert(InstrClass::Shuffle, 30u64);
        counts.insert(InstrClass::FMul, 50);
        counts.insert(InstrClass::FAdd, 20);
        counts.insert(InstrClass::Load, 500);
        let r = Report::new(Machine::sandy_bridge(), 100.0, 100, 600, BTreeMap::new(), counts);
        assert!((r.issue_rate(InstrClass::Shuffle) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_bottleneck() {
        let r = report_with(&[(Resource::Divider, 44.0)], 10, 44.0);
        let text = r.to_string();
        assert!(text.contains("bottleneck: divs/sqrt"), "{text}");
    }
}
