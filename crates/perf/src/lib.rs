//! # slingen-perf
//!
//! A microarchitectural performance model in the spirit of **ERM** \[7\],
//! the generalized-roofline bottleneck analysis tool the paper uses in §4
//! ("Bottleneck analysis", Table 4).
//!
//! The paper measures generated C on an Intel Sandy Bridge i7-2600; this
//! reproduction estimates cycles by scheduling the dynamic instruction
//! stream (produced by `slingen-vm`) onto a port model built from a
//! `slingen_cir::Target` descriptor ([`Machine::from_target`]; the
//! default AVX2 target is the Sandy Bridge model below, the AVX2+FMA
//! target additionally executes fused multiply-adds on the multiply
//! port):
//!
//! * separate FP multiply and FP add ports (1 × 256-bit op/cycle each —
//!   peak 8 flops/cycle in double precision, as in the paper);
//! * an unpipelined divider: a divide or square root blocks it for ~44
//!   cycles (vector) / ~22 cycles (scalar) — the paper's "can only be
//!   issued every 44 cycles";
//! * a shuffle port (1/cycle) and blends at 2/cycle;
//! * 2 × 128-bit load units and 1 × 128-bit store unit per cycle (256-bit
//!   accesses occupy two unit-slots), L1 latency 4;
//! * true data dependences through registers and memory cells (hardware
//!   register renaming is modeled: only read-after-write serializes);
//! * library calls occupy a front-end resource for a configurable
//!   interface overhead — the cost the paper attributes to fixed
//!   library APIs on small sizes.
//!
//! [`measure`] runs a C-IR function in the VM under a [`Scheduler`] monitor
//! and returns a [`Report`] with estimated cycles, per-resource pressure,
//! the bottleneck attribution, and the shuffle/blend issue rates that
//! Table 4 reports.

pub mod machine;
pub mod report;
pub mod sched;

pub use machine::{Machine, Resource};
pub use report::{MeasuredTime, Report};
pub use sched::{pressure_lower_bound, Scheduler};

use slingen_cir::Function;
use slingen_vm::{BufferSet, KernelLib, VmError};

/// Execute `f` under the performance model and return the report.
///
/// `buffers` provides the inputs and receives the outputs (so correctness
/// checks and measurement share one execution).
///
/// # Errors
///
/// Propagates any [`VmError`] from execution.
pub fn measure(
    f: &Function,
    buffers: &mut BufferSet,
    lib: Option<&KernelLib>,
    machine: &Machine,
) -> Result<Report, VmError> {
    Ok(measure_budgeted(f, buffers, lib, machine, None)?.expect("no budget, no cutoff"))
}

/// Execute `f` under the performance model with a cycle budget: as soon as
/// the modeled makespan exceeds `budget` the run is abandoned and `None`
/// is returned (the variant is provably slower than the budget). With
/// `budget: None` this is [`measure`].
///
/// The autotuner uses this to discard dominated variants without paying
/// for their full simulation.
///
/// # Errors
///
/// Propagates any [`VmError`] from execution.
pub fn measure_budgeted(
    f: &Function,
    buffers: &mut BufferSet,
    lib: Option<&KernelLib>,
    machine: &Machine,
    budget: Option<f64>,
) -> Result<Option<Report>, VmError> {
    let mut sched = Scheduler::with_budget(machine.clone(), budget);
    slingen_vm::execute_with_lib(f, buffers, lib, &mut sched)?;
    if sched.budget_exceeded() {
        Ok(None)
    } else {
        Ok(Some(sched.finish()))
    }
}
