//! Machine descriptions: issue resources, throughputs, latencies.
//!
//! A [`Machine`] is built *from* a [`slingen_cir::Target`] descriptor
//! ([`Machine::from_target`]): the target carries the per-op cost tables
//! and capability flags, this module turns them into the resource model
//! the scheduler charges against. The historical
//! [`Machine::sandy_bridge`] constructor is the [`Target::Avx2`] machine.

use slingen_cir::Target;
use std::fmt;

/// An issue resource (execution port or fixed-function unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// FP multiply port.
    FMul,
    /// FP add port.
    FAdd,
    /// The (unpipelined) divide/sqrt unit.
    Divider,
    /// Shuffle/permute port.
    Shuffle,
    /// Blend capacity.
    Blend,
    /// L1 load units.
    Load,
    /// L1 store unit.
    Store,
    /// Register moves / broadcasts.
    Mov,
    /// Front-end / dispatch (library-call interface overhead).
    Frontend,
}

impl Resource {
    /// All resources, for iteration.
    pub const ALL: [Resource; 9] = [
        Resource::FMul,
        Resource::FAdd,
        Resource::Divider,
        Resource::Shuffle,
        Resource::Blend,
        Resource::Load,
        Resource::Store,
        Resource::Mov,
        Resource::Frontend,
    ];

    /// Stable single-token name used in the on-disk cache wire format
    /// (see [`crate::Report::to_wire`]). Never reorder or rename these:
    /// persisted caches parse them back with [`Resource::parse_wire`].
    pub fn wire_name(self) -> &'static str {
        match self {
            Resource::FMul => "fmul",
            Resource::FAdd => "fadd",
            Resource::Divider => "div",
            Resource::Shuffle => "shuf",
            Resource::Blend => "blend",
            Resource::Load => "load",
            Resource::Store => "store",
            Resource::Mov => "mov",
            Resource::Frontend => "fe",
        }
    }

    /// Inverse of [`Resource::wire_name`].
    pub fn parse_wire(s: &str) -> Option<Resource> {
        Resource::ALL.iter().copied().find(|r| r.wire_name() == s)
    }

    /// Short label used in reports (matches the paper's vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            Resource::FMul => "fp mul",
            Resource::FAdd => "fp add",
            Resource::Divider => "divs/sqrt",
            Resource::Shuffle => "shuffles",
            Resource::Blend => "blends",
            Resource::Load => "L1 loads",
            Resource::Store => "L1 stores",
            Resource::Mov => "reg moves",
            Resource::Frontend => "call overhead",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A machine model: per-resource capacity (unit-slots per cycle) and
/// instruction latencies.
///
/// Capacities are in *units per cycle*; an instruction consumes some number
/// of units on one or more resources (e.g. a 256-bit load consumes 2 load
/// units; a scalar load consumes 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Model name (for reports).
    pub name: String,
    /// FP multiplies issued per cycle (vector or scalar).
    pub fmul_per_cycle: f64,
    /// FP adds issued per cycle.
    pub fadd_per_cycle: f64,
    /// Shuffles issued per cycle.
    pub shuffle_per_cycle: f64,
    /// Blends issued per cycle.
    pub blend_per_cycle: f64,
    /// Register moves/broadcasts per cycle.
    pub mov_per_cycle: f64,
    /// Load unit-slots per cycle (128-bit units).
    pub load_units_per_cycle: f64,
    /// Store unit-slots per cycle (128-bit units).
    pub store_units_per_cycle: f64,
    /// FP multiply latency (cycles).
    pub fmul_latency: f64,
    /// FP add latency (cycles).
    pub fadd_latency: f64,
    /// Fused multiply-add latency (cycles). FMA occupies the multiply
    /// port (Haswell-style), so there is no separate capacity knob.
    pub fma_latency: f64,
    /// Shuffle latency.
    pub shuffle_latency: f64,
    /// Blend latency.
    pub blend_latency: f64,
    /// Move latency.
    pub mov_latency: f64,
    /// L1 load-to-use latency.
    pub load_latency: f64,
    /// Store-to-load forwarding latency.
    pub store_latency: f64,
    /// Divider occupancy & latency for a *scalar* divide or sqrt.
    pub div_scalar_cycles: f64,
    /// Divider occupancy & latency for a *vector* divide or sqrt.
    pub div_vector_cycles: f64,
    /// Front-end cycles consumed by one library call (interface overhead:
    /// argument checking, dispatch, no cross-call fusion).
    pub call_overhead_cycles: f64,
    /// The vector width the peak numbers assume (for reports only).
    pub nominal_width: usize,
}

impl Machine {
    /// Build the machine model for a [`Target`] from its cost tables.
    ///
    /// Every shipped target has a distinct table (see
    /// [`slingen_cir::target`]); [`Target::Avx2`] reproduces the
    /// historical Sandy Bridge numbers exactly, and [`Target::Avx2Fma`]
    /// differs from it only by executing fused multiply-adds — so cycle
    /// deltas between the two isolate the effect of FMA contraction.
    pub fn from_target(target: Target) -> Machine {
        let c = target.costs();
        Machine {
            name: target.desc().machine_name.to_string(),
            fmul_per_cycle: c.fmul_per_cycle,
            fadd_per_cycle: c.fadd_per_cycle,
            shuffle_per_cycle: c.shuffle_per_cycle,
            blend_per_cycle: c.blend_per_cycle,
            mov_per_cycle: c.mov_per_cycle,
            load_units_per_cycle: c.load_units_per_cycle,
            store_units_per_cycle: c.store_units_per_cycle,
            fmul_latency: c.fmul_latency,
            fadd_latency: c.fadd_latency,
            fma_latency: c.fma_latency,
            shuffle_latency: c.shuffle_latency,
            blend_latency: c.blend_latency,
            mov_latency: c.mov_latency,
            load_latency: c.load_latency,
            store_latency: c.store_latency,
            div_scalar_cycles: c.div_scalar_cycles,
            div_vector_cycles: c.div_vector_cycles,
            call_overhead_cycles: c.call_overhead_cycles,
            nominal_width: c.nominal_width,
        }
    }

    /// The paper's evaluation platform: Intel Core i7-2600 (Sandy Bridge),
    /// AVX, double precision, ν = 4. Peak 8 flops/cycle. Identical to
    /// `Machine::from_target(Target::Avx2)`.
    pub fn sandy_bridge() -> Machine {
        Machine::from_target(Target::Avx2)
    }

    /// Peak flops/cycle (mul + add ports, nominal width).
    pub fn peak_flops_per_cycle(&self) -> f64 {
        (self.fmul_per_cycle + self.fadd_per_cycle) * self.nominal_width as f64
    }

    /// Capacity in units/cycle for a resource.
    pub fn capacity(&self, r: Resource) -> f64 {
        match r {
            Resource::FMul => self.fmul_per_cycle,
            Resource::FAdd => self.fadd_per_cycle,
            Resource::Divider => 1.0,
            Resource::Shuffle => self.shuffle_per_cycle,
            Resource::Blend => self.blend_per_cycle,
            Resource::Load => self.load_units_per_cycle,
            Resource::Store => self.store_units_per_cycle,
            Resource::Mov => self.mov_per_cycle,
            Resource::Frontend => 1.0,
        }
    }

    /// Set the library-call overhead (builder style).
    pub fn with_call_overhead(mut self, cycles: f64) -> Machine {
        self.call_overhead_cycles = cycles;
        self
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::sandy_bridge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandy_bridge_peak_is_8_flops_per_cycle() {
        let m = Machine::sandy_bridge();
        assert_eq!(m.peak_flops_per_cycle(), 8.0);
    }

    #[test]
    fn sandy_bridge_is_the_avx2_target_machine() {
        assert_eq!(Machine::sandy_bridge(), Machine::from_target(Target::Avx2));
    }

    #[test]
    fn per_target_machines_are_distinct() {
        let machines: Vec<Machine> = Target::ALL.iter().map(|t| Machine::from_target(*t)).collect();
        for i in 0..machines.len() {
            for j in i + 1..machines.len() {
                assert_ne!(
                    machines[i], machines[j],
                    "{} vs {}",
                    machines[i].name, machines[j].name
                );
            }
        }
    }

    #[test]
    fn nominal_width_tracks_target_max_width() {
        for t in Target::ALL {
            assert_eq!(Machine::from_target(t).nominal_width, t.max_width());
        }
    }

    #[test]
    fn capacities_are_positive() {
        let m = Machine::sandy_bridge();
        for r in Resource::ALL {
            assert!(m.capacity(r) > 0.0, "{r} has zero capacity");
        }
    }

    #[test]
    fn call_overhead_builder() {
        let m = Machine::sandy_bridge().with_call_overhead(500.0);
        assert_eq!(m.call_overhead_cycles, 500.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            Resource::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), Resource::ALL.len());
    }
}
