//! Behavioral tests of the machine model against first-principles
//! expectations: peak attainability, overhead accounting, bottleneck
//! attribution, and monotonicity properties the figures rely on.

use slingen_cir::{Affine, BinOp, BufKind, FunctionBuilder, MemRef};
use slingen_perf::{measure, Machine, Resource};
use slingen_vm::BufferSet;

/// A balanced mul+add kernel with plenty of ILP should approach the
/// machine's 8 flops/cycle peak.
#[test]
fn balanced_fp_stream_approaches_peak() {
    let mut b = FunctionBuilder::new("peak", 4);
    let o = b.buffer("o", 4, BufKind::ParamOut);
    // 64 independent chains, interleaved: enough ILP to fill both ports
    let mut regs = Vec::new();
    for i in 0..64 {
        regs.push(b.vbroadcast(1.0 + i as f64 * 1e-3));
    }
    let mut outs = Vec::new();
    for round in 0..8 {
        for i in 0..64 {
            let m = b.vbin(BinOp::Mul, regs[i], regs[(i + 1) % 64]);
            let a = b.vbin(BinOp::Add, m, regs[(i + 2) % 64]);
            if round == 7 && i < 4 {
                outs.push(a);
            }
        }
    }
    let last = outs[0];
    b.vstore_contig(last, MemRef::new(o, 0));
    let f = b.finish();
    let mut bufs = BufferSet::for_function(&f);
    let r = measure(&f, &mut bufs, None, &Machine::sandy_bridge()).unwrap();
    let fpc = r.flops_per_cycle();
    assert!(fpc > 6.0, "expected near-peak, got {fpc:.2}");
    assert!(fpc <= 8.0 + 1e-9, "cannot exceed peak, got {fpc:.2}");
}

/// Doubling the interface overhead must increase a call-heavy program's
/// cycles accordingly.
#[test]
fn call_overhead_scales_linearly() {
    use slingen_cir::Instr;
    use slingen_vm::KernelLib;
    let mut lib = KernelLib::new();
    let mut kb = FunctionBuilder::new("k", 1);
    kb.buffer("a", 1, BufKind::ParamInOut);
    lib.register(kb.finish());
    let mut b = FunctionBuilder::new("main", 1);
    let a = b.buffer("a", 1, BufKind::ParamInOut);
    for _ in 0..10 {
        b.instr(Instr::Call { kernel: "k".into(), bufs: vec![a], ints: vec![] });
    }
    let f = b.finish();
    let mut bufs = BufferSet::for_function(&f);
    let cheap =
        measure(&f, &mut bufs, Some(&lib), &Machine::sandy_bridge().with_call_overhead(100.0))
            .unwrap();
    let mut bufs = BufferSet::for_function(&f);
    let costly =
        measure(&f, &mut bufs, Some(&lib), &Machine::sandy_bridge().with_call_overhead(200.0))
            .unwrap();
    let delta = costly.cycles - cheap.cycles;
    assert!((delta - 1000.0).abs() < 50.0, "10 calls x 100 extra cycles, got {delta}");
}

/// Store-heavy code is bound by the single store unit.
#[test]
fn store_bound_attribution() {
    let mut b = FunctionBuilder::new("st", 4);
    let o = b.buffer("o", 512, BufKind::ParamOut);
    let v = b.vbroadcast(3.0);
    for i in 0..128 {
        b.vstore_contig(v, MemRef::new(o, (i * 4) as i64));
    }
    let f = b.finish();
    let mut bufs = BufferSet::for_function(&f);
    let r = measure(&f, &mut bufs, None, &Machine::sandy_bridge()).unwrap();
    assert_eq!(r.bottleneck(), Resource::Store);
    // 128 256-bit stores at 2 unit-slots over 1 slot/cycle >= 256 cycles
    assert!(r.cycles >= 256.0, "{}", r.cycles);
}

/// A rolled loop and its unrolled equivalent cost roughly the same
/// (branching is not modeled; address arithmetic is free) — the unroller
/// pays off only through the enabled register optimizations.
#[test]
fn rolled_and_unrolled_loops_cost_alike() {
    let build = |unrolled: bool| {
        let mut b = FunctionBuilder::new("lp", 4);
        let x = b.buffer("x", 64, BufKind::ParamInOut);
        if unrolled {
            for i in (0..64).step_by(4) {
                let v = b.vload_contig(MemRef::new(x, i as i64));
                let w = b.vbin(BinOp::Add, v, v);
                b.vstore_contig(w, MemRef::new(x, i as i64));
            }
        } else {
            let i = b.begin_for(0, 64, 4);
            let v = b.vload_contig(MemRef::new(x, Affine::var(i)));
            let w = b.vbin(BinOp::Add, v, v);
            b.vstore_contig(w, MemRef::new(x, Affine::var(i)));
            b.end_for();
        }
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        measure(&f, &mut bufs, None, &Machine::sandy_bridge()).unwrap().cycles
    };
    let (rolled, unrolled) = (build(false), build(true));
    assert!((rolled - unrolled).abs() < 1.0, "{rolled} vs {unrolled}");
}

/// Perf limits: a shuffle-free program's shuffle limit equals peak.
#[test]
fn shuffle_free_code_has_peak_shuffle_limit() {
    let mut b = FunctionBuilder::new("nf", 4);
    let x = b.buffer("x", 8, BufKind::ParamInOut);
    let v = b.vload_contig(MemRef::new(x, 0));
    let w = b.vbin(BinOp::Mul, v, v);
    b.vstore_contig(w, MemRef::new(x, 4));
    let f = b.finish();
    let mut bufs = BufferSet::for_function(&f);
    let r = measure(&f, &mut bufs, None, &Machine::sandy_bridge()).unwrap();
    assert_eq!(r.perf_limit(Resource::Shuffle), 8.0);
    assert_eq!(r.shuffle_blend_issue_rate(), 0.0);
}

/// Machine-model sensitivity: halving the divider penalty must speed up
/// division-bound code and leave flop-bound code nearly untouched — the
/// paper's point that small-size factorizations are divider-limited.
#[test]
fn divider_sensitivity_separates_kernels() {
    // division chain (Cholesky-like recurrence)
    let mut b = FunctionBuilder::new("divs", 1);
    let o = b.buffer("o", 1, BufKind::ParamOut);
    let mut acc = b.smov(256.0);
    for _ in 0..8 {
        acc = b.sbin(BinOp::Div, acc, 1.375);
    }
    b.sstore(acc, MemRef::new(o, 0));
    let divf = b.finish();

    // flop stream
    let mut b = FunctionBuilder::new("flops", 4);
    let o = b.buffer("o", 4, BufKind::ParamOut);
    let mut regs = Vec::new();
    for i in 0..16 {
        regs.push(b.vbroadcast(1.0 + i as f64));
    }
    let mut last = regs[0];
    for r in 0..8 {
        for i in 0..16 {
            last = b.vbin(BinOp::Mul, regs[i], regs[(i + r) % 16]);
        }
    }
    b.vstore_contig(last, MemRef::new(o, 0));
    let flopf = b.finish();

    let fast_div = {
        let mut m = Machine::sandy_bridge();
        m.div_scalar_cycles = 11.0;
        m.div_vector_cycles = 22.0;
        m
    };
    let measure_on = |f: &slingen_cir::Function, m: &Machine| {
        let mut bufs = BufferSet::for_function(f);
        measure(f, &mut bufs, None, m).unwrap().cycles
    };
    let div_base = measure_on(&divf, &Machine::sandy_bridge());
    let div_fast = measure_on(&divf, &fast_div);
    assert!(
        div_fast < 0.6 * div_base,
        "division-bound code must track the divider: {div_fast} vs {div_base}"
    );
    let flop_base = measure_on(&flopf, &Machine::sandy_bridge());
    let flop_fast = measure_on(&flopf, &fast_div);
    assert!(
        (flop_fast - flop_base).abs() < 1.0,
        "flop-bound code must not care: {flop_fast} vs {flop_base}"
    );
}
