//! The L1-analysis convex solver iteration (paper Fig. 13c), used in
//! image denoising and sparse recovery: eight BLAS-2-shaped statements.
//!
//! Run with: `cargo run --release --example l1_analysis`

use slingen::{apps, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24;
    let program = apps::l1a(n);
    let generated = slingen::generate(&program, &Options::default())?;
    let diff =
        slingen::verify(&program, &generated.function, generated.policy, generated.spec.nu, 3)?;
    println!("l1a n={n}: verified (max diff {diff:.2e})");
    assert!(diff < 1e-8);
    println!(
        "{:.0} cycles, {:.2} f/c nominal (memory-bound: {})",
        generated.report.cycles,
        apps::nominal_flops("l1a", n, 0) / generated.report.cycles,
        generated.report.bottleneck()
    );
    Ok(())
}
