//! The LA language's `for` construct: run several Kalman-style damped
//! update steps in one generated function (the grammar's ⟨for-loop⟩,
//! paper Fig. 4). Demonstrates parsing loops from text and verifying the
//! generated code.
//!
//! Run with: `cargo run --release --example kf_steps`

use slingen_ir::parse::Parser;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        Mat F(n, n) <In>;
        Mat B(n, n) <In>;
        Vec u(n) <In>;
        Vec x(n) <InOut>;
        for (i = 0:4) {
            x = F * x + B * u;
        }
    ";
    let program = Parser::new().with_name("kf_steps").with_param("n", 8).parse(source)?;
    println!("parsed:\n{program}");

    let generated = slingen::generate(&program, &slingen::Options::default())?;
    let diff =
        slingen::verify(&program, &generated.function, generated.policy, generated.spec.nu, 11)?;
    println!(
        "4 unrolled steps: {:.0} cycles, verified (max diff {diff:.2e})",
        generated.report.cycles
    );
    assert!(diff < 1e-9);

    // the state-update statement appears once per iteration in the
    // synthesized basic program
    let mut db = slingen_synth::AlgorithmDb::new();
    let basic =
        slingen_synth::synthesize_program(&program, generated.policy, generated.spec.nu, &mut db)?;
    assert_eq!(basic.stmts.len(), 4, "one statement per unrolled iteration");
    Ok(())
}
