//! Variant-space autotuning on the paper's running example (eq. 5):
//! search policy × ν × loop-threshold for the Cholesky factorization,
//! compare strategies, and show the Stage-1a algorithm reuse plus the
//! tuning cache.
//!
//! Run with: `cargo run --release --example cholesky_variants`

use slingen::{apps, generate_with_spec, Options, SearchSpace, Strategy};
use slingen_synth::Policy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for n in [8usize, 16, 32] {
        let program = apps::potrf(n);
        println!("potrf n={n}:");

        // every point of the default space, measured individually
        let opts = Options::default();
        for spec in opts.search.enumerate(opts.target, opts.nu) {
            let g = generate_with_spec(&program, spec, &opts)?;
            println!(
                "  {:>14}: {:>9.0} cycles ({:.2} f/c nominal), DB hits/misses {}/{}",
                spec.to_string(),
                g.report.cycles,
                apps::nominal_flops("potrf", n, 0) / g.report.cycles,
                g.db_stats.0,
                g.db_stats.1
            );
        }

        // the default greedy search: all three dimensions, pruned by the
        // machine model's cycle budget, byte-identical variants deduped
        let auto = slingen::generate(&program, &opts)?;
        println!(
            "  greedy winner: {} ({} variants explored, {} pruned early, {} deduped)",
            auto.spec, auto.tuning.explored, auto.tuning.pruned, auto.tuning.deduped
        );

        // exhaustive sweep for comparison: same winner, more work
        let exhaustive = Options {
            search: SearchSpace::default().with_strategy(Strategy::Exhaustive),
            ..Options::default()
        };
        let full = slingen::generate(&program, &exhaustive)?;
        println!("  exhaustive winner: {} ({} variants measured)", full.spec, full.tuning.explored);

        // a restricted space pins single axes (here: the historical
        // 2-policy fan-out as a 2-point space)
        let row = Options {
            search: SearchSpace::default()
                .with_policies(Policy::ALL)
                .with_nus([4])
                .with_loop_thresholds([64]),
            ..Options::default()
        };
        let old = slingen::generate(&program, &row)?;
        println!(
            "  2-policy row winner: {} ({:.0} cycles vs tuned {:.0})",
            old.spec, old.report.cycles, auto.report.cycles
        );
        // guaranteed by construction: the greedy seed sweep *is* this row
        // (global optimality vs the exhaustive sweep is asserted by the
        // regression tests in tests/tuner.rs, not by this smoke example)
        assert!(auto.report.cycles <= old.report.cycles + 1e-9);

        // repeated generation through the same Options hits the cache
        let again = slingen::generate(&program, &opts)?;
        assert!(again.tuning.cache_hit);
        let (hits, misses) = opts.cache.stats();
        println!("  tuning cache: {hits} hits / {misses} misses\n");
    }
    Ok(())
}
