//! Algorithmic autotuning on the paper's running example (eq. 5):
//! derive both loop-invariant families for the Cholesky factorization,
//! compare their modeled cycles, and show the Stage-1a algorithm reuse.
//!
//! Run with: `cargo run --release --example cholesky_variants`

use slingen::{apps, generate_with_policy, Options};
use slingen_synth::Policy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for n in [8usize, 16, 32] {
        let program = apps::potrf(n);
        println!("potrf n={n}:");
        for policy in Policy::ALL {
            let g = generate_with_policy(&program, policy, &Options::default())?;
            println!(
                "  {policy:>6}: {:>9.0} cycles ({:.2} f/c nominal), DB hits/misses {}/{}",
                g.report.cycles,
                apps::nominal_flops("potrf", n, 0) / g.report.cycles,
                g.db_stats.0,
                g.db_stats.1
            );
        }
        let auto = slingen::generate(&program, &Options::default())?;
        println!("  autotuned winner: {}", auto.policy);
    }
    Ok(())
}
