//! Gaussian process regression (paper Fig. 13b): predictive mean and
//! variance for noise-free test data — Cholesky, two triangular solves,
//! and a handful of dot products.
//!
//! Run with: `cargo run --release --example gaussian_process`

use slingen::{apps, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let program = apps::gpr(n);
    let generated = slingen::generate(&program, &Options::default())?;
    let diff =
        slingen::verify(&program, &generated.function, generated.policy, generated.spec.nu, 5)?;
    println!("gpr n={n}: verified (max diff {diff:.2e})");
    assert!(diff < 1e-8);
    println!(
        "variant {}, {:.0} cycles, {:.2} f/c nominal",
        generated.policy,
        generated.report.cycles,
        apps::nominal_flops("gpr", n, 0) / generated.report.cycles
    );
    // The paper attributes gpr's modest performance to the sequentially
    // dependent divisions of the Cholesky/solve chain — visible here:
    println!("bottleneck: {}", generated.report.bottleneck());
    println!("\n{}", generated.report);
    Ok(())
}
