//! The paper's flagship application: one iteration of the Kalman filter
//! (Fig. 13a) — generation, verification against a hand-written reference
//! built on the BLAS substrate, and a head-to-head with the MKL-style
//! library baseline.
//!
//! Run with: `cargo run --release --example kalman`

use slingen::{apps, Options};
use slingen_baselines::{baseline_codegen, Flavor};
use slingen_lgen::BufferMap;
use slingen_vm::BufferSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12; // states = observations, as in Fig. 15a
    let program = apps::kf(n);
    println!(
        "Kalman filter, n = {n}: {} LA statements ({} HLACs)",
        program.statements().len(),
        program.statements().iter().filter(|s| s.is_hlac()).count()
    );

    let generated = slingen::generate(&program, &Options::default())?;
    let diff =
        slingen::verify(&program, &generated.function, generated.policy, generated.spec.nu, 9)?;
    println!("verification vs reference semantics: max diff {diff:.2e}");
    assert!(diff < 1e-8);

    // measure SLinGen vs the MKL-style baseline on the same workload
    let flops = apps::nominal_flops("kf", n, 0);
    println!(
        "SLinGen ({}): {:.0} cycles, {:.2} f/c",
        generated.policy,
        generated.report.cycles,
        flops / generated.report.cycles
    );
    let mkl = baseline_codegen(&program, Flavor::Mkl)?;
    let mut fb = slingen_cir::FunctionBuilder::new("probe", 4);
    let map = BufferMap::build(&program, &mut fb);
    let mut bufs = BufferSet::for_function(&mkl.function);
    for (op, data) in slingen::workload::inputs(&program, 9) {
        bufs.set(map.buf(op), &data);
    }
    let mkl_report = slingen_perf::measure(
        &mkl.function,
        &mut bufs,
        Some(&mkl.kernels),
        &Flavor::Mkl.machine(),
    )?;
    println!(
        "MKL baseline: {:.0} cycles, {:.2} f/c  (SLinGen speedup {:.1}x)",
        mkl_report.cycles,
        flops / mkl_report.cycles,
        mkl_report.cycles / generated.report.cycles
    );
    println!("\nbottleneck report for the generated code:\n{}", generated.report);
    Ok(())
}
