//! Emit the generated single-source C for every benchmark kernel and
//! application — the paper's actual deliverable format.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example emit_c [--target scalar|sse2|avx2|avx2fma|all] [out_dir]
//! ```
//!
//! `--target` selects the instruction-set target (default `avx2`, the
//! historical behavior); `--target all` emits every shipped target into
//! per-target subdirectories, demonstrating the retargetable backend:
//! the same LA program becomes plain C, `_mm_*`, `_mm256_*`, or
//! `_mm256_fmadd_pd` code from one machine description.

use slingen::{apps, Options, Target};

fn emit_for(target: Target, out_dir: &str) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(out_dir)?;
    let programs = vec![
        ("potrf", apps::potrf(12)),
        ("trsyl", apps::trsyl(8)),
        ("trlya", apps::trlya(8)),
        ("trtri", apps::trtri(12)),
        ("kf", apps::kf(8)),
        ("gpr", apps::gpr(8)),
        ("l1a", apps::l1a(16)),
    ];
    let opts = Options::for_target(target);
    for (name, program) in programs {
        let g = slingen::generate(&program, &opts)?;
        let path = format!("{out_dir}/{name}.c");
        std::fs::write(&path, &g.c_code)?;
        println!(
            "{path}: [{target}] {} instrs, {} variant, {:.2} f/c modeled",
            g.function.static_instr_count(),
            g.spec,
            g.flops_per_cycle()
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target_arg: Option<String> = None;
    let mut out_dir = "generated_c".to_string();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--target" {
            target_arg = args.get(i + 1).cloned();
            if target_arg.is_none() {
                eprintln!("error: --target requires a value (scalar|sse2|avx2|avx2fma|all)");
                std::process::exit(2);
            }
            i += 2;
        } else {
            out_dir = args[i].clone();
            i += 1;
        }
    }
    match target_arg.as_deref() {
        None => emit_for(Target::Avx2, &out_dir),
        Some("all") => {
            for target in Target::ALL {
                emit_for(target, &format!("{out_dir}/{target}"))?;
            }
            Ok(())
        }
        Some(name) => match Target::parse(name) {
            Some(target) => emit_for(target, &out_dir),
            None => {
                eprintln!("error: unknown target `{name}` (scalar|sse2|avx2|avx2fma|all)");
                std::process::exit(2);
            }
        },
    }
}
