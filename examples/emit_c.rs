//! Emit the generated single-source C for every benchmark kernel and
//! application — the paper's actual deliverable format.
//!
//! Run with: `cargo run --release --example emit_c [out_dir]`

use slingen::{apps, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "generated_c".to_string());
    std::fs::create_dir_all(&out_dir)?;
    let programs = vec![
        ("potrf", apps::potrf(12)),
        ("trsyl", apps::trsyl(8)),
        ("trlya", apps::trlya(8)),
        ("trtri", apps::trtri(12)),
        ("kf", apps::kf(8)),
        ("gpr", apps::gpr(8)),
        ("l1a", apps::l1a(16)),
    ];
    for (name, program) in programs {
        let g = slingen::generate(&program, &Options::default())?;
        let path = format!("{out_dir}/{name}.c");
        std::fs::write(&path, &g.c_code)?;
        println!(
            "{path}: {} instrs, {} variant, {:.2} f/c modeled",
            g.function.static_instr_count(),
            g.policy,
            g.flops_per_cycle()
        );
    }
    Ok(())
}
