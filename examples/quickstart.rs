//! Quickstart: write an LA program as text (the paper's Fig. 5), generate
//! optimized C, and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use slingen_ir::parse::Parser;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig. 5: a fragment of the Kalman filter. `U` shares
    // storage with `S` via ow(..), so the Cholesky factor overwrites it.
    let source = "
        Mat H(k, n) <In>;
        Mat P(k, k) <In, UpSym, PD>;
        Mat R(k, k) <In, UpSym, PD>;
        Mat S(k, k) <Out, UpSym, PD>;
        Mat U(k, k) <Out, UpTri, NS, ow(S)>;
        Mat B(k, k) <Out>;
        S = H * H' + R;
        U' * U = S;
        U' * B = P;
    ";
    let program = Parser::new()
        .with_name("kalman_fragment")
        .with_param("k", 4)
        .with_param("n", 8)
        .parse(source)?;
    println!("parsed LA program:\n{program}");

    let generated = slingen::generate(&program, &slingen::Options::default())?;
    println!(
        "selected variant: {} ({} variants explored)",
        generated.spec, generated.tuning.explored
    );
    println!("modeled performance: {:.2} flops/cycle", generated.flops_per_cycle());
    println!("\ngenerated C:\n{}", generated.c_code);

    // verify the generated code against the reference semantics
    let diff =
        slingen::verify(&program, &generated.function, generated.policy, generated.spec.nu, 42)?;
    println!("max |generated - reference| = {diff:.2e}");
    assert!(diff < 1e-9);
    Ok(())
}
