//! Persistence suite: the tuning cache must round-trip through its
//! on-disk format byte-exactly, and must treat every corrupt, truncated,
//! stale, or wrong-version file as empty — logged, never trusted, never
//! a panic.

use slingen::{apps, Options, TuneCache};
use slingen_ir::Program;
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("slingen-cache-test-{}-{name}", std::process::id()))
}

fn tracked_apps() -> Vec<Program> {
    vec![apps::potrf(6), apps::trtri(6), apps::trsyl(4), apps::kf(4), apps::gpr(4)]
}

/// Save → load replays every tracked workload as a persisted hit with
/// byte-identical C, the exact report, and zero cold searches.
#[test]
fn save_load_round_trip_replays_every_entry() {
    let warm = Options::default();
    let cold: Vec<_> =
        tracked_apps().iter().map(|p| slingen::generate(p, &warm).unwrap()).collect();
    assert_eq!(warm.cache.searches(), tracked_apps().len() as u64);

    let path = tmp("roundtrip");
    let written = warm.cache.save(&path).unwrap();
    assert_eq!(written, tracked_apps().len());

    let loaded = TuneCache::load_checked(&path).unwrap();
    assert_eq!(loaded.len(), written);
    let replay = Options { cache: loaded.clone(), ..Options::default() };
    for (program, cold) in tracked_apps().iter().zip(&cold) {
        let g = slingen::generate(program, &replay).unwrap();
        assert!(g.tuning.cache_hit, "{}: must replay from disk", program.name());
        assert!(g.tuning.persisted, "{}: must be marked persisted", program.name());
        assert_eq!(g.c_code, cold.c_code, "{}: C must be byte-identical", program.name());
        assert_eq!(g.spec, cold.spec);
        assert_eq!(g.report.cycles, cold.report.cycles);
        assert_eq!(g.report.flops, cold.report.flops);
    }
    assert_eq!(loaded.searches(), 0, "a warm-loaded cache must not re-search");
    // replayed entries are re-persistable: a second round trip is stable
    let path2 = tmp("roundtrip2");
    assert_eq!(loaded.save(&path2).unwrap(), written);
    assert_eq!(fs::read_to_string(&path).unwrap(), fs::read_to_string(&path2).unwrap());
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&path2);
}

/// A missing file is not an error for `load` (cold start), but is for
/// `load_checked`.
#[test]
fn missing_file_loads_empty() {
    let path = tmp("does-not-exist");
    let cache = TuneCache::load(&path);
    assert!(cache.is_empty());
    assert!(TuneCache::load_checked(&path).is_err());
}

/// Every corruption mode degrades to an empty cache with a reason — and
/// generation through that empty cache still works.
#[test]
fn corrupt_files_load_empty_and_never_panic() {
    // a real file to derive truncated/doctored variants from
    let opts = Options::default();
    slingen::generate(&apps::potrf(4), &opts).unwrap();
    let valid_path = tmp("valid");
    opts.cache.save(&valid_path).unwrap();
    let valid = fs::read_to_string(&valid_path).unwrap();
    let _ = fs::remove_file(&valid_path);

    let truncated = &valid[..valid.len() / 2];
    assert!(valid.starts_with("slingen-tunecache v2\n"), "saves write the v2 header");
    let wrong_version = valid.replacen("slingen-tunecache v2", "slingen-tunecache v99", 1);
    let lying_length = valid.replacen("code ", "code 9", 1); // inflates the blob length
    let no_end_marker = valid[..valid.rfind("end ").unwrap()].to_string();
    let trailing_garbage = format!("{valid}junk after the end marker\n");
    let cases: Vec<(&str, String)> = vec![
        ("empty", String::new()),
        ("bad-magic", "not-a-cache v1\n".into()),
        ("wrong-version", wrong_version),
        ("truncated", truncated.into()),
        ("binary-garbage", "\u{1}\u{2}\u{3}\u{fffd}\n\n\u{4}".into()),
        ("lying-length", lying_length),
        ("no-end-marker", no_end_marker),
        ("trailing-garbage", trailing_garbage),
    ];
    for (name, contents) in cases {
        let path = tmp(name);
        fs::write(&path, contents).unwrap();
        let err = TuneCache::load_checked(&path);
        assert!(err.is_err(), "{name}: load_checked must reject the file");
        let cache = TuneCache::load(&path);
        assert!(cache.is_empty(), "{name}: load must degrade to an empty cache");
        let _ = fs::remove_file(&path);
    }

    // an empty (degraded) cache still serves generation
    let degraded = Options { cache: TuneCache::load(&tmp("empty")), ..Options::default() };
    let g = slingen::generate(&apps::potrf(4), &degraded).unwrap();
    assert!(!g.tuning.cache_hit);
}

/// A well-formed but *stale* file — the persisted C no longer matches
/// what the generator emits for the recorded spec — is rejected at
/// materialization time and falls back to a fresh search.
#[test]
fn stale_persisted_code_falls_back_to_a_fresh_search() {
    let opts = Options::default();
    let cold = slingen::generate(&apps::potrf(4), &opts).unwrap();
    let path = tmp("stale");
    opts.cache.save(&path).unwrap();

    // Doctor one byte inside the C blob, keeping the length intact, so
    // the file parses cleanly but no longer matches the generator.
    let contents = fs::read_to_string(&path).unwrap();
    assert!(contents.contains("void potrf"));
    fs::write(&path, contents.replacen("void potrf", "woid potrf", 1)).unwrap();

    let loaded = TuneCache::load_checked(&path).unwrap();
    assert_eq!(loaded.len(), 1, "the doctored file still parses");
    let replay = Options { cache: loaded.clone(), ..Options::default() };
    let g = slingen::generate(&apps::potrf(4), &replay).unwrap();
    assert!(!g.tuning.cache_hit, "a stale entry must not be replayed");
    assert_eq!(g.c_code, cold.c_code, "the fresh search must reproduce the true artifact");
    assert_eq!(loaded.searches(), 1, "the fallback runs exactly one search");
    // and the repaired entry replays normally from now on
    let again = slingen::generate(&apps::potrf(4), &replay).unwrap();
    assert!(again.tuning.cache_hit);
    let _ = fs::remove_file(&path);
}

/// `save` is atomic: it never leaves a temp file behind, and an existing
/// file is replaced wholesale, not appended to.
#[test]
fn save_is_atomic_and_replaces() {
    let opts = Options::default();
    slingen::generate(&apps::potrf(4), &opts).unwrap();
    let path = tmp("atomic");
    opts.cache.save(&path).unwrap();
    let first = fs::read_to_string(&path).unwrap();
    slingen::generate(&apps::trtri(4), &opts).unwrap();
    opts.cache.save(&path).unwrap();
    let second = fs::read_to_string(&path).unwrap();
    assert_ne!(first, second);
    assert!(second.ends_with("end 2\n"), "exactly one end marker with the new count");
    assert_eq!(second.matches("slingen-tunecache").count(), 1, "replaced, not appended");
    let dir = path.parent().unwrap();
    let stem = path.file_name().unwrap().to_string_lossy().into_owned();
    let leftovers: Vec<_> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(&stem) && *n != stem)
        .collect();
    assert!(leftovers.is_empty(), "no temp files left behind: {leftovers:?}");
    let _ = fs::remove_file(&path);
}

/// `save_capped` evicts the least-recently-hit entries — from the file
/// *and* from memory — keeping the `cap` most recently touched. Recency
/// follows lookups, not insertion order: re-hitting an old entry saves
/// it from eviction.
#[test]
fn save_capped_evicts_least_recently_hit() {
    let opts = Options::default();
    let programs = tracked_apps();
    for p in &programs {
        slingen::generate(p, &opts).unwrap();
    }
    assert_eq!(opts.cache.len(), programs.len());

    // Refresh the two *oldest* entries: a pure-insertion-order policy
    // would now evict exactly the wrong ones.
    slingen::generate(&programs[0], &opts).unwrap();
    slingen::generate(&programs[1], &opts).unwrap();

    let path = tmp("capped");
    let written = opts.cache.save_capped(&path, Some(3)).unwrap();
    assert_eq!(written, 3, "the cap bounds the file");
    assert_eq!(opts.cache.len(), 3, "eviction also bounds the in-memory store");

    // Survivors: the refreshed [0], [1] and the last-inserted [4].
    let searches_before = opts.cache.searches();
    for keep in [0, 1, 4] {
        let g = slingen::generate(&programs[keep], &opts).unwrap();
        assert!(g.tuning.cache_hit, "{}: recently-hit entry must survive", programs[keep].name());
    }
    assert_eq!(opts.cache.searches(), searches_before, "survivors replay without searching");
    // Evicted: [2] and [3] re-search from scratch.
    for gone in [2, 3] {
        let g = slingen::generate(&programs[gone], &opts).unwrap();
        assert!(
            !g.tuning.cache_hit,
            "{}: least-recently-hit entry must be evicted",
            programs[gone].name()
        );
    }

    // The saved file holds exactly the survivors: a fresh load replays
    // all three without a search.
    let loaded = TuneCache::load_checked(&path).unwrap();
    assert_eq!(loaded.len(), 3);
    let replay = Options { cache: loaded.clone(), ..Options::default() };
    for keep in [0, 1, 4] {
        let g = slingen::generate(&programs[keep], &replay).unwrap();
        assert!(g.tuning.cache_hit && g.tuning.persisted, "{}", programs[keep].name());
    }
    assert_eq!(loaded.searches(), 0);
    let _ = fs::remove_file(&path);
}

/// Mixed-version compatibility: a v1-headed file (the pre-measured
/// format) still loads and replays. Model-only entries carry no `M`
/// report section, so rewriting the header is exactly what an old
/// writer would have produced.
#[test]
fn v1_files_still_load_and_replay() {
    let opts = Options::default();
    let cold = slingen::generate(&apps::potrf(4), &opts).unwrap();
    let path = tmp("v1-compat");
    opts.cache.save(&path).unwrap();

    let contents = fs::read_to_string(&path).unwrap();
    assert!(
        !contents.contains(" M "),
        "model-only reports must serialize without a measured section"
    );
    let v1 = contents.replacen("slingen-tunecache v2", "slingen-tunecache v1", 1);
    assert_ne!(v1, contents, "the header must actually have been rewritten");
    fs::write(&path, v1).unwrap();

    let loaded = TuneCache::load_checked(&path).unwrap();
    assert_eq!(loaded.len(), 1, "a v1 file is accepted");
    let replay = Options { cache: loaded, ..Options::default() };
    let g = slingen::generate(&apps::potrf(4), &replay).unwrap();
    assert!(g.tuning.cache_hit && g.tuning.persisted);
    assert_eq!(g.c_code, cold.c_code);
    assert_eq!(g.report.measured, None);

    // and re-saving upgrades the file to the current header
    assert_eq!(replay.cache.save(&path).unwrap(), 1);
    assert!(fs::read_to_string(&path).unwrap().starts_with("slingen-tunecache v2\n"));
    let _ = fs::remove_file(&path);
}

/// v2 round trip with a *measured* report: the optional `M` section
/// survives save → load bit-exactly. Needs a working C compiler; skips
/// (trivially passes) without one.
#[test]
fn measured_reports_round_trip_through_the_cache() {
    if !cc_available() {
        eprintln!("skipping: no C compiler on PATH");
        return;
    }
    let opts = Options { measure: slingen::MeasureConfig::hardware(), ..Options::default() };
    let cold = slingen::generate(&apps::potrf(4), &opts).unwrap();
    let Some(measured) = cold.report.measured else {
        eprintln!("skipping: hardware measurement fell back to the model");
        return;
    };

    let path = tmp("v2-measured");
    opts.cache.save(&path).unwrap();
    assert!(
        fs::read_to_string(&path).unwrap().contains(" M "),
        "a measured report must persist its M section"
    );

    let loaded = TuneCache::load_checked(&path).unwrap();
    let replay = Options { cache: loaded, measure: opts.measure.clone(), ..Options::default() };
    let g = slingen::generate(&apps::potrf(4), &replay).unwrap();
    assert!(g.tuning.cache_hit && g.tuning.persisted);
    assert_eq!(g.report.measured, Some(measured), "measured timing must round-trip bit-exactly");
    assert_eq!(g.cycles_source(), "measured");
    let _ = fs::remove_file(&path);
}

fn cc_available() -> bool {
    std::process::Command::new("cc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// A cap at or above the entry count is a no-op: nothing evicted, and
/// the file is what an uncapped save writes.
#[test]
fn save_capped_above_len_is_uncapped() {
    let opts = Options::default();
    slingen::generate(&apps::potrf(4), &opts).unwrap();
    slingen::generate(&apps::trtri(4), &opts).unwrap();
    let capped = tmp("cap-noop");
    let plain = tmp("cap-noop-plain");
    assert_eq!(opts.cache.save_capped(&capped, Some(100)).unwrap(), 2);
    assert_eq!(opts.cache.len(), 2, "no eviction at or above the cap");
    assert_eq!(opts.cache.save(&plain).unwrap(), 2);
    assert_eq!(
        fs::read_to_string(&capped).unwrap(),
        fs::read_to_string(&plain).unwrap(),
        "a generous cap writes the same file as an uncapped save"
    );
    let _ = fs::remove_file(&capped);
    let _ = fs::remove_file(&plain);
}
