//! Regression guards for the paper's headline *shapes*: who wins, rough
//! factors, and where bottlenecks sit. These assertions keep the model
//! honest — if a change flips an ordering the paper reports, these fail.

use slingen::apps::{self, nominal_flops};
use slingen_baselines::Flavor;
use slingen_bench::{measure_baseline, measure_slingen};
use slingen_perf::Resource;

#[test]
fn slingen_beats_libraries_and_compilers_on_potrf() {
    // paper §4.2: ~2x over MKL, ~4.2x over icc, ~5.6x over clang/Polly
    let n = 28;
    let p = apps::potrf(n);
    let fl = nominal_flops("potrf", n, 0);
    let ours = measure_slingen(&p, n, fl).flops_per_cycle;
    for (flavor, min_speedup) in
        [(Flavor::Mkl, 1.5), (Flavor::Eigen, 1.2), (Flavor::Icc, 2.0), (Flavor::ClangPolly, 2.0)]
    {
        let theirs = measure_baseline(&p, flavor, n, fl).flops_per_cycle;
        assert!(
            ours > theirs * min_speedup,
            "potrf n={n}: SLinGen {ours:.2} vs {} {theirs:.2} (need {min_speedup}x)",
            flavor.label()
        );
    }
}

#[test]
fn library_overhead_dominates_small_sizes() {
    // the motivation of the paper: fixed interfaces hurt at small n
    let n = 4;
    let p = apps::potrf(n);
    let fl = nominal_flops("potrf", n, 0);
    let ours = measure_slingen(&p, n, fl);
    let mkl = measure_baseline(&p, Flavor::Mkl, n, fl);
    assert!(
        ours.cycles < mkl.cycles,
        "call overhead must hurt MKL at n=4: {} vs {}",
        ours.cycles,
        mkl.cycles
    );
}

#[test]
fn recsy_is_slowest_sylvester_solver() {
    // paper: RECSY ~12x slower than SLinGen on trsyl
    let n = 20;
    let p = apps::trsyl(n);
    let fl = nominal_flops("trsyl", n, 0);
    let ours = measure_slingen(&p, n, fl).flops_per_cycle;
    let recsy = measure_baseline(&p, Flavor::Recsy, n, fl).flops_per_cycle;
    let mkl = measure_baseline(&p, Flavor::Mkl, n, fl).flops_per_cycle;
    assert!(ours > 2.0 * recsy, "trsyl: SLinGen {ours:.2} vs RECSY {recsy:.2}");
    assert!(mkl > recsy, "trsyl: MKL should beat RECSY");
}

#[test]
fn divisions_bound_small_sizes_loads_or_shuffles_larger() {
    // Table 4's trend for potrf
    let p4 = apps::potrf(4);
    let small = measure_slingen(&p4, 4, nominal_flops("potrf", 4, 0));
    assert_eq!(small.report.bottleneck(), Resource::Divider);
    let p44 = apps::potrf(44);
    let large = measure_slingen(&p44, 44, nominal_flops("potrf", 44, 0));
    assert_ne!(
        large.report.bottleneck(),
        Resource::Divider,
        "divider fraction is asymptotically small"
    );
}

#[test]
fn cl1ck_small_blocks_beat_large_blocks() {
    // Fig. 14 right columns: nb = 4 is the best Cl1ck+MKL configuration
    let n = 20;
    let p = apps::potrf(n);
    let fl = nominal_flops("potrf", n, 0);
    let nb4 = measure_baseline(&p, Flavor::Cl1ckMkl { nb: 4 }, n, fl).flops_per_cycle;
    let nbh = measure_baseline(&p, Flavor::Cl1ckMkl { nb: n / 2 }, n, fl).flops_per_cycle;
    assert!(nb4 > nbh, "nb=4 {nb4:.2} must beat nb=n/2 {nbh:.2}");
}

#[test]
fn kalman_filter_speedups_hold() {
    // paper Fig. 15a: ~1.4x over MKL, ~3x over Eigen, ~4x over icc
    let n = 12;
    let p = apps::kf(n);
    let fl = nominal_flops("kf", n, 0);
    let ours = measure_slingen(&p, n, fl).flops_per_cycle;
    let mkl = measure_baseline(&p, Flavor::Mkl, n, fl).flops_per_cycle;
    let icc = measure_baseline(&p, Flavor::Icc, n, fl).flops_per_cycle;
    assert!(ours > mkl, "kf: SLinGen {ours:.2} vs MKL {mkl:.2}");
    assert!(ours > 1.5 * icc, "kf: SLinGen {ours:.2} vs icc {icc:.2}");
}

#[test]
fn vectorization_ablation_nu() {
    // Generated AVX (nu=4) code must beat generated scalar (nu=1) code
    // once out of the division-latency-dominated regime. (At tiny sizes a
    // single invocation is chain-bound and vectorization cannot help —
    // see EXPERIMENTS.md on single-invocation vs warm-loop measurement.)
    let n = 40;
    let p = apps::potrf(n);
    let mut opts = slingen::Options::default();
    let avx = slingen::generate(&p, &opts).unwrap();
    opts.nu = 1;
    let scalar = slingen::generate(&p, &opts).unwrap();
    assert!(
        avx.report.cycles * 1.2 < scalar.report.cycles,
        "nu=4 {} vs nu=1 {}",
        avx.report.cycles,
        scalar.report.cycles
    );
}

#[test]
fn load_store_analysis_ablation() {
    // the Fig. 12 optimization must not hurt, and shuffle/blend counts
    // must reflect it
    let n = 12;
    let p = apps::potrf(n);
    let mut opts = slingen::Options::default();
    let with = slingen::generate(&p, &opts).unwrap();
    opts.passes.load_store_analysis = false;
    let without = slingen::generate(&p, &opts).unwrap();
    assert!(
        with.report.cycles <= without.report.cycles * 1.05,
        "load/store analysis should not regress: {} vs {}",
        with.report.cycles,
        without.report.cycles
    );
}
