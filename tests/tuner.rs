//! Tuner regression suite: the variant-space search must return the true
//! optimum of its space, deterministically, on every paper app.

use proptest::prelude::*;
use slingen::{apps, generate_with_spec, Options, SearchSpace, Strategy};
use slingen_ir::Program;

fn paper_apps() -> Vec<(&'static str, Program)> {
    vec![
        ("potrf", apps::potrf(6)),
        ("trsyl", apps::trsyl(4)),
        ("trlya", apps::trlya(4)),
        ("trtri", apps::trtri(6)),
        ("kf", apps::kf(4)),
        ("gpr", apps::gpr(4)),
        ("l1a", apps::l1a(8)),
    ]
}

/// The tuned winner (default greedy search) is at least as fast as every
/// point of the space, on all 7 paper apps — i.e. greedy finds the global
/// optimum of the default space, not just a local one.
#[test]
fn tuned_winner_bounds_every_point_on_all_apps() {
    for (name, program) in paper_apps() {
        let opts = Options::default();
        let tuned = slingen::generate(&program, &opts).unwrap();
        for spec in opts.search.enumerate(opts.target, opts.nu) {
            let point = generate_with_spec(&program, spec, &opts).unwrap();
            assert!(
                tuned.report.cycles <= point.report.cycles + 1e-9,
                "{name}: tuned {} ({}) loses to point {} ({})",
                tuned.spec,
                tuned.report.cycles,
                spec,
                point.report.cycles
            );
        }
    }
}

/// The acceptance bound of the search refactor: the default tuner can
/// never lose to the historical 2-policy autotuner (both policies at the
/// options' ν and loop threshold).
#[test]
fn tuned_winner_never_loses_to_the_two_policy_fanout() {
    for (name, program) in paper_apps() {
        let opts = Options::default();
        let tuned = slingen::generate(&program, &opts).unwrap();
        for policy in slingen_synth::Policy::ALL {
            let old = slingen::generate_with_policy(&program, policy, &opts).unwrap();
            assert!(
                tuned.report.cycles <= old.report.cycles + 1e-9,
                "{name}: tuned {} loses to 2-policy winner {policy}",
                tuned.spec
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: across random Cholesky sizes, the greedy winner matches
    /// the exhaustive winner's modeled cycles (the coordinate descent
    /// does not get stuck in a local minimum of this space).
    #[test]
    fn greedy_matches_exhaustive_on_random_sizes(n in 3usize..12) {
        let program = apps::potrf(n);
        let greedy = slingen::generate(&program, &Options::default()).unwrap();
        let opts = Options {
            search: SearchSpace::default().with_strategy(Strategy::Exhaustive),
            ..Options::default()
        };
        let exhaustive = slingen::generate(&program, &opts).unwrap();
        prop_assert!(
            greedy.report.cycles <= exhaustive.report.cycles + 1e-9,
            "potrf({}): greedy {} ({}) vs exhaustive {} ({})",
            n, greedy.spec, greedy.report.cycles, exhaustive.spec, exhaustive.report.cycles
        );
    }
}

/// Two `generate()` runs racing on parallel threads (separate caches)
/// must produce byte-identical C and the same winning variant; a third,
/// sequential run must agree too.
#[test]
fn parallel_generation_is_deterministic() {
    let make = || {
        let program = apps::kf(4);
        let g = slingen::generate(&program, &Options::default()).unwrap();
        (g.c_code, g.spec)
    };
    let (a, b) = std::thread::scope(|s| {
        let ha = s.spawn(make);
        let hb = s.spawn(make);
        (ha.join().unwrap(), hb.join().unwrap())
    });
    assert_eq!(a.1, b.1, "winning VariantSpec must be identical");
    assert_eq!(a.0, b.0, "winning C code must be byte-identical");
    let c = make();
    assert_eq!(a.1, c.1);
    assert_eq!(a.0, c.0);
}

/// A shared cache serves repeated generation of the same kernel without
/// re-searching, and the cached result is the same artifact.
#[test]
fn cache_replays_identical_artifacts() {
    let program = apps::trtri(8);
    let opts = Options::default();
    let cold = slingen::generate(&program, &opts).unwrap();
    assert!(!cold.tuning.cache_hit);
    assert!(cold.tuning.explored >= 3);
    for _ in 0..3 {
        let warm = slingen::generate(&program, &opts).unwrap();
        assert!(warm.tuning.cache_hit);
        assert_eq!(warm.c_code, cold.c_code);
        assert_eq!(warm.spec, cold.spec);
        assert_eq!(warm.report.cycles, cold.report.cycles);
    }
    assert_eq!(opts.cache.stats(), (3, 1));
    // a different program through the same cache is a fresh entry
    let other = slingen::generate(&apps::trtri(6), &opts).unwrap();
    assert!(!other.tuning.cache_hit);
    assert_eq!(opts.cache.len(), 2);
    // the search is a pure function of the space, so a request seeded at
    // another axis member (threshold 256) replays the canonical entry
    let wider = Options { loop_threshold: 256, cache: opts.cache.clone(), ..Options::default() };
    let g = slingen::generate(&program, &wider).unwrap();
    assert!(g.tuning.cache_hit, "an axis-member seed threshold must hit the canonical entry");
    assert_eq!(g.c_code, cold.c_code);
    assert_eq!(opts.cache.len(), 2);
    // options that genuinely change the searched space still miss
    let narrowed = Options {
        search: SearchSpace::default().with_loop_thresholds(vec![16, 64]),
        cache: opts.cache.clone(),
        ..Options::default()
    };
    let g = slingen::generate(&program, &narrowed).unwrap();
    assert!(!g.tuning.cache_hit, "a different search space must miss");
    assert_eq!(opts.cache.len(), 3);
}

/// The cache key canonicalizes the seed coordinates: requests whose raw
/// `nu`/`loop_threshold` snap to the same axis members provably run the
/// same search, so they share one entry instead of missing.
#[test]
fn cache_canonicalizes_equivalent_seed_options() {
    let program = apps::trtri(8);
    let opts = Options::default(); // nu 4, threshold 64
    let cold = slingen::generate(&program, &opts).unwrap();
    assert!(!cold.tuning.cache_hit);
    // Every member of the default threshold axis {16, 64, 256} — and
    // off-axis values such as 100 and 63 — shares the canonical entry:
    // the greedy seed is derived from the space, not from the request.
    // ν = 8 snaps to 4 (the widest member of the AVX2 ν axis). All are
    // the same canonical search as the cold run.
    for (nu, thr) in [(4, 16), (4, 64), (4, 256), (4, 100), (4, 63), (8, 64)] {
        let equiv =
            Options { nu, loop_threshold: thr, cache: opts.cache.clone(), ..Options::default() };
        let warm = slingen::generate(&program, &equiv).unwrap();
        assert!(warm.tuning.cache_hit, "(ν={nu}, thr={thr}) must hit the canonical entry");
        assert_eq!(warm.c_code, cold.c_code);
        assert_eq!(warm.spec, cold.spec);
    }
    assert_eq!(opts.cache.len(), 1, "equivalent requests must share one entry");
}

/// Exploration statistics reconcile: every point of an exhaustive search
/// is accounted exactly once, and the predicted/deduped counters are
/// disjoint parts of that total.
#[test]
fn exhaustive_stats_reconcile_with_the_space() {
    for (name, program) in paper_apps() {
        let opts = Options {
            search: SearchSpace::default().with_strategy(Strategy::Exhaustive),
            ..Options::default()
        };
        let g = slingen::generate(&program, &opts).unwrap();
        let space = opts.search.len(opts.target, opts.nu);
        assert_eq!(
            g.tuning.explored, space,
            "{name}: every point of the space must be accounted exactly once"
        );
        assert!(
            g.tuning.predicted + g.tuning.deduped < g.tuning.explored,
            "{name}: at least one variant must be a measured representative"
        );
        // The threshold axis has 3 members per (policy, ν) group; any
        // group whose profile separates fewer than 3 classes yields
        // predicted collisions. All 7 paper apps have at least one.
        assert!(g.tuning.predicted > 0, "{name}: expected predicted collisions, got none");
    }
}

/// A pinned policy bypasses the search but still reports its spec.
#[test]
fn pinned_policy_skips_search() {
    let program = apps::potrf(6);
    let opts = Options { policy: Some(slingen_synth::Policy::Lazy), ..Options::default() };
    let g = slingen::generate(&program, &opts).unwrap();
    assert_eq!(g.policy, slingen_synth::Policy::Lazy);
    assert_eq!(g.tuning.explored, 1);
    assert_eq!(opts.cache.stats(), (0, 0), "pinned generation must not consult the cache");
}

/// An empty search space is a graceful error under every strategy, not a
/// panic.
#[test]
fn empty_search_space_errors() {
    let program = apps::potrf(6);
    for strategy in [Strategy::Greedy, Strategy::Exhaustive] {
        let opts = Options {
            search: SearchSpace::default().with_loop_thresholds(Vec::new()).with_strategy(strategy),
            ..Options::default()
        };
        assert!(slingen::generate(&program, &opts).is_err(), "{strategy:?} must error");
        let opts = Options {
            search: SearchSpace::default().with_policies(Vec::new()).with_strategy(strategy),
            ..Options::default()
        };
        assert!(slingen::generate(&program, &opts).is_err(), "{strategy:?} must error");
    }
}
