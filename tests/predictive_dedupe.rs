//! Soundness of the tuner's predictive threshold dedupe: the
//! [`LowerProfile`] recorded while Stage 2 runs classifies every loop
//! threshold exactly — two thresholds in the same class ("predicted
//! equal") must produce byte-identical C after the full pipeline, on
//! every paper app × target × ν × policy. The tuner skips Stage 2/3 for
//! predicted collisions, so this suite is the end-to-end proof that the
//! skip never changes the winner.

use proptest::prelude::*;
use slingen::{apps, generate_with_spec, Options, Target, VariantSpec};
use slingen_ir::Program;
use slingen_lgen::{lower_program_profiled, LowerOptions};
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

fn paper_apps() -> Vec<(&'static str, Program)> {
    vec![
        ("potrf", apps::potrf(6)),
        ("trsyl", apps::trsyl(4)),
        ("trlya", apps::trlya(4)),
        ("trtri", apps::trtri(6)),
        ("kf", apps::kf(4)),
        ("gpr", apps::gpr(4)),
        ("l1a", apps::l1a(8)),
    ]
}

/// Thresholds spanning all-looped (0) through all-unrolled (4096).
const THRESHOLDS: &[usize] = &[0, 16, 64, 256, 4096];

fn profile_for(
    program: &Program,
    policy: Policy,
    nu: usize,
    loop_threshold: usize,
) -> slingen_lgen::LowerProfile {
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(program, policy, nu, &mut db).expect("paper app synthesizes");
    let (_, profile) = lower_program_profiled(
        program,
        &basic,
        program.name(),
        &LowerOptions::new(nu, loop_threshold),
    )
    .expect("paper app lowers");
    profile
}

/// Exhaustive sweep: for every app × target × ν × policy, thresholds in
/// the same profile class emit byte-identical C; and the profile itself
/// is threshold-independent (the works values are recorded before the
/// loop-vs-unroll decision).
#[test]
fn equal_classes_are_byte_identical_everywhere() {
    for (name, program) in paper_apps() {
        for target in Target::ALL {
            for &nu in target.widths() {
                for policy in Policy::ALL {
                    let profile = profile_for(&program, policy, nu, THRESHOLDS[0]);
                    let mut by_class: HashMap<usize, (usize, String)> = HashMap::new();
                    for &t in THRESHOLDS {
                        assert_eq!(
                            profile,
                            profile_for(&program, policy, nu, t),
                            "{name}/{target}/nu{nu}/{policy}: profile must not depend on the \
                             threshold"
                        );
                        let opts = Options::for_target(target);
                        let spec = VariantSpec { policy, nu, loop_threshold: t };
                        let c = generate_with_spec(&program, spec, &opts)
                            .expect("paper app generates")
                            .c_code;
                        match by_class.entry(profile.loop_class(t)) {
                            Entry::Occupied(e) => assert_eq!(
                                c,
                                e.get().1,
                                "{name}/{target}/nu{nu}/{policy}: thresholds {t} and {} share a \
                                 class but emit different C",
                                e.get().0
                            ),
                            Entry::Vacant(v) => {
                                v.insert((t, c));
                            }
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for random (app, target, policy, ν, threshold pair)
    /// draws, equal profile classes imply byte-identical emitted C.
    #[test]
    fn random_threshold_pairs_respect_their_class(
        app_idx in 0usize..7,
        target_idx in 0usize..4,
        policy_idx in 0usize..2,
        nu_idx in 0usize..3,
        t1 in 0usize..600,
        t2 in 0usize..600,
    ) {
        let (name, program) = paper_apps().swap_remove(app_idx);
        let target = Target::ALL[target_idx % Target::ALL.len()];
        let policy = Policy::ALL[policy_idx % Policy::ALL.len()];
        let widths = target.widths();
        let nu = widths[nu_idx % widths.len()];
        let profile = profile_for(&program, policy, nu, t1);
        if profile.loop_class(t1) != profile.loop_class(t2) {
            // not a predicted-equal pair; draw the next case (the
            // vendored proptest shim has no `prop_assume!`)
            continue;
        }
        let opts = Options::for_target(target);
        let c1 = generate_with_spec(
            &program, VariantSpec { policy, nu, loop_threshold: t1 }, &opts,
        ).unwrap().c_code;
        let c2 = generate_with_spec(
            &program, VariantSpec { policy, nu, loop_threshold: t2 }, &opts,
        ).unwrap().c_code;
        prop_assert_eq!(
            c1, c2,
            "{}/{}/nu{}/{}: predicted-equal thresholds {} and {} emit different C",
            name, target, nu, policy, t1, t2
        );
    }
}
