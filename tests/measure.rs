//! Measured-autotuning suite: the two-stage (model → hardware) flow, its
//! graceful degradation when no C compiler works, and the determinism
//! bounds of the hardware measurer itself.
//!
//! Tests that need a real compiler detect one at runtime and trivially
//! pass without it, so the suite stays green on compiler-less CI.

use slingen::{apps, HardwareMeasurer, MeasureConfig, Measurer, Options};
use slingen_ir::Program;
use std::path::PathBuf;

fn cc_available() -> bool {
    std::process::Command::new("cc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// The seven tracked applications at sizes small enough that a full
/// search plus a handful of harness compiles stays fast.
fn tracked_apps() -> Vec<Program> {
    vec![
        apps::potrf(8),
        apps::trtri(8),
        apps::trsyl(4),
        apps::trlya(4),
        apps::kf(4),
        apps::gpr(4),
        apps::l1a(8),
    ]
}

fn hardware_options() -> Options {
    Options { measure: MeasureConfig::hardware(), ..Options::default() }
}

/// With a compiler path that cannot possibly run, hardware mode must
/// degrade to the model flow *byte-identically*: same C, same spec, same
/// report line, no measured section, no hardware trials.
#[test]
fn forced_fallback_is_byte_identical_to_model() {
    let bogus = PathBuf::from("/nonexistent/slingen-no-such-cc");
    for program in tracked_apps() {
        let model = slingen::generate(&program, &Options::default()).unwrap();
        let opts = Options {
            measure: MeasureConfig { compiler: Some(bogus.clone()), ..MeasureConfig::hardware() },
            ..Options::default()
        };
        let g = slingen::generate(&program, &opts).unwrap();
        let name = program.name();
        assert_eq!(g.c_code, model.c_code, "{name}: fallback C must match the model flow");
        assert_eq!(g.spec, model.spec, "{name}: fallback winner must match");
        assert_eq!(
            g.report.to_wire(),
            model.report.to_wire(),
            "{name}: fallback report must match"
        );
        assert_eq!(g.report.measured, None, "{name}: no measured section on fallback");
        assert!(g.hw_trials.is_empty(), "{name}: no hardware trials on fallback");
        assert_eq!(g.cycles_source(), "model");
    }
}

/// The forced fallback also holds through the service: responses for the
/// same request differ from a model-only engine *only* in fields that
/// are identical anyway — i.e. not at all.
#[test]
fn forced_fallback_serve_responses_match_model_engine() {
    use slingen::serve::Engine;
    use slingen::{Target, TuneCache};

    let request = r#"{"id":1,"app":"potrf","n":4}"#;
    let model_engine = Engine::new(TuneCache::new(), Target::Avx2);
    let hw_engine = Engine::new(TuneCache::new(), Target::Avx2).with_measure(MeasureConfig {
        compiler: Some(PathBuf::from("/nonexistent/slingen-no-such-cc")),
        ..MeasureConfig::hardware()
    });
    let a = model_engine.handle_line(request);
    let b = hw_engine.handle_line(request);
    assert_eq!(a, b, "fallback service responses must be byte-identical to model-only");
    assert!(a.contains(r#""cycles_source":"model""#));
}

/// Two-stage ranking on every tracked app: both the model-ranked and the
/// hardware-ranked winner must be members of the declared search space,
/// and the hardware winner's measured time can never lose to the model
/// winner's measured time (the model winner is always trial zero).
#[test]
fn hardware_and_model_winners_are_valid_space_members() {
    if !cc_available() {
        eprintln!("skipping: no C compiler on PATH");
        return;
    }
    let mut reranked = 0usize;
    for program in tracked_apps() {
        let name = program.name().to_string();
        let model = slingen::generate(&program, &Options::default()).unwrap();
        let opts = hardware_options();
        let g = slingen::generate(&program, &opts).unwrap();
        let space = opts.search.enumerate(opts.target, opts.nu);
        assert!(space.contains(&model.spec), "{name}: model winner must be in the space");
        assert!(space.contains(&g.spec), "{name}: hardware winner must be in the space");
        let Some(measured) = g.report.measured else {
            eprintln!("{name}: hardware ranking fell back ({})", g.tuning.hw_ranked);
            continue;
        };
        assert!(measured.cycles.is_finite() && measured.cycles > 0.0, "{name}");
        assert!(!g.hw_trials.is_empty(), "{name}: measured winner implies recorded trials");
        assert_eq!(
            g.hw_trials[0].spec, model.spec,
            "{name}: trial zero is the model-ranked winner"
        );
        for t in &g.hw_trials {
            assert!(space.contains(&t.spec), "{name}: every trial is a space member");
            assert!(
                measured.cycles <= t.measured.cycles,
                "{name}: the measured winner must be the measured minimum"
            );
        }
        assert_eq!(g.tuning.hw_ranked, g.hw_trials.len(), "{name}: stats track the trials");
        assert_eq!(g.cycles_source(), "measured");
        reranked += 1;
    }
    assert!(
        reranked >= 2,
        "hardware ranking must complete on at least two tracked workloads (got {reranked})"
    );
}

/// Repeat measurements of one kernel through the artifact cache must be
/// positive, finite, and within a generous variance bound of each other:
/// the harness medians out scheduler noise, so a 4x spread between two
/// runs of the same binary means the measurer is broken, not the machine.
#[test]
fn hardware_measurer_repeat_runs_are_bounded() {
    if !cc_available() {
        eprintln!("skipping: no C compiler on PATH");
        return;
    }
    let program = apps::potrf(4);
    let g = slingen::generate(&program, &Options::default()).unwrap();
    let measurer = HardwareMeasurer::new(slingen::Target::Avx2, &MeasureConfig::hardware())
        .expect("cc probed as available");
    let a = measurer.measure(&program, &g.function, 0).unwrap();
    let b = measurer.measure(&program, &g.function, 0).unwrap();
    for m in [a, b] {
        assert!(m.cycles.is_finite() && m.cycles > 0.0);
        assert!(m.ns.is_finite() && m.ns > 0.0);
        assert!(m.reps >= 1);
    }
    let (lo, hi) = if a.cycles < b.cycles { (a.cycles, b.cycles) } else { (b.cycles, a.cycles) };
    assert!(
        hi / lo < 4.0,
        "repeat runs of one kernel disagree beyond bounds: {lo:.1} vs {hi:.1} cycles"
    );
}

/// Identical emitted source must hit the artifact cache: the second
/// measurement reuses the compiled binary instead of re-invoking cc.
#[test]
fn artifact_cache_reuses_compiled_harnesses() {
    if !cc_available() {
        eprintln!("skipping: no C compiler on PATH");
        return;
    }
    let dir = std::env::temp_dir().join(format!("slingen-artifact-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = MeasureConfig { artifact_dir: Some(dir.clone()), ..MeasureConfig::hardware() };
    let program = apps::potrf(4);
    let g = slingen::generate(&program, &Options::default()).unwrap();
    let measurer = HardwareMeasurer::new(slingen::Target::Avx2, &cfg).unwrap();
    measurer.measure(&program, &g.function, 0).unwrap();
    let count = |d: &std::path::Path| std::fs::read_dir(d).unwrap().count();
    let after_first = count(&dir);
    assert!(after_first >= 1, "the first measurement populates the artifact dir");
    measurer.measure(&program, &g.function, 0).unwrap();
    assert_eq!(count(&dir), after_first, "the second measurement adds no new artifacts");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Calibration fits a finite latency and throughput for every op the
/// target supports, and applying it perturbs only the documented Machine
/// entries.
#[test]
fn calibration_fits_every_supported_op() {
    if !cc_available() {
        eprintln!("skipping: no C compiler on PATH");
        return;
    }
    let cal = slingen::calibrate(slingen::Target::Avx2Fma, &MeasureConfig::hardware()).unwrap();
    for op in ["add", "mul", "fma", "div", "sqrt"] {
        for vector in [false, true] {
            let c = cal
                .get(op, vector)
                .unwrap_or_else(|| panic!("missing calibration for {op} vector={vector}"));
            assert!(c.latency.is_finite() && c.latency > 0.0, "{op}/{vector}");
            assert!(c.throughput.is_finite() && c.throughput > 0.0, "{op}/{vector}");
            // latency is cycles/op, throughput is ops/cycle: their product
            // is the effective pipeline depth, >= ~1 for anything sane and
            // bounded by issue width times chain overlap.
            let depth = c.latency * c.throughput;
            assert!(
                (0.5..=128.0).contains(&depth),
                "{op}/{vector}: implausible latency {} x throughput {}",
                c.latency,
                c.throughput
            );
        }
    }
}
