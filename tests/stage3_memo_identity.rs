//! Soundness of the cold-search fast paths added on top of predictive
//! dedupe: block-memoized Stage 3 (the dirty-log pass skipping and the
//! CSE replay segments) and the scheduler's memoized demand tapes must be
//! pure accelerations — same C bytes, same Report bits — never a change
//! in what the generator produces.
//!
//! Three layers are proved here, on every paper app × target × ν ×
//! policy:
//!
//! 1. `PassConfig::block_memo` on vs. off emits **byte-identical C**.
//! 2. The winning variant's [`Report`] (measured through the memoizing
//!    scheduler) is **bit-identical** across the toggle, compared via
//!    the exact IEEE-754 wire encoding ([`Report::to_wire`]).
//! 3. The static [`pressure_lower_bound`] used by the tuner's
//!    incumbent-aware cutoff never exceeds the measured makespan — the
//!    "prune" really is a lower bound, so skipping the VM for
//!    `lb > budget` variants can only drop losers.
//!
//! [`Report`]: slingen_perf::Report
//! [`Report::to_wire`]: slingen_perf::Report::to_wire
//! [`pressure_lower_bound`]: slingen_perf::pressure_lower_bound

use proptest::prelude::*;
use slingen::{apps, generate, generate_with_spec, Options, Target, VariantSpec};
use slingen_ir::Program;
use slingen_perf::pressure_lower_bound;
use slingen_synth::Policy;

fn paper_apps() -> Vec<(&'static str, Program)> {
    vec![
        ("potrf", apps::potrf(6)),
        ("trsyl", apps::trsyl(4)),
        ("trlya", apps::trlya(4)),
        ("trtri", apps::trtri(6)),
        ("kf", apps::kf(4)),
        ("gpr", apps::gpr(4)),
        ("l1a", apps::l1a(8)),
    ]
}

fn opts_with_memo(target: Target, block_memo: bool) -> Options {
    let mut opts = Options::for_target(target);
    opts.passes.block_memo = block_memo;
    opts
}

/// Exhaustive sweep: for every app × target × ν × policy, Stage 3 with
/// the block memo enabled emits the same C bytes and measures to the
/// same Report bits as the plain full-pass pipeline, and the static
/// pressure bound under-approximates the measured makespan.
#[test]
fn block_memo_is_byte_identical_everywhere() {
    for (name, program) in paper_apps() {
        for target in Target::ALL {
            for &nu in target.widths() {
                for policy in Policy::ALL {
                    let spec = VariantSpec { policy, nu, loop_threshold: 64 };
                    let memo = generate_with_spec(&program, spec, &opts_with_memo(target, true))
                        .expect("paper app generates (memo)");
                    let full = generate_with_spec(&program, spec, &opts_with_memo(target, false))
                        .expect("paper app generates (full)");
                    assert_eq!(
                        memo.c_code, full.c_code,
                        "{name}/{target}/nu{nu}/{policy}: block-memoized Stage 3 changed the \
                         emitted C"
                    );
                    assert_eq!(
                        memo.report.to_wire(),
                        full.report.to_wire(),
                        "{name}/{target}/nu{nu}/{policy}: block-memoized Stage 3 changed the \
                         measured Report"
                    );
                    let opts = opts_with_memo(target, true);
                    let lb = pressure_lower_bound(&memo.function, &opts.machine);
                    assert!(
                        lb <= memo.report.cycles + 1e-9,
                        "{name}/{target}/nu{nu}/{policy}: pressure bound {lb} exceeds measured \
                         makespan {}",
                        memo.report.cycles
                    );
                }
            }
        }
    }
}

/// The full autotuned search — where the block memo, the CSE replay
/// segments, and the LB cutoff all actually fire — picks the same
/// winning spec and emits the same C bytes with the memo on and off.
#[test]
fn tuned_winner_is_memo_invariant() {
    for (name, program) in paper_apps() {
        for target in [Target::Avx2Fma, Target::Sse2] {
            let memo =
                generate(&program, &opts_with_memo(target, true)).expect("paper app tunes (memo)");
            let full =
                generate(&program, &opts_with_memo(target, false)).expect("paper app tunes (full)");
            assert_eq!(
                memo.spec, full.spec,
                "{name}/{target}: block-memoized search picked a different winner"
            );
            assert_eq!(
                memo.c_code, full.c_code,
                "{name}/{target}: block-memoized search emitted different C"
            );
            assert_eq!(
                memo.report.to_wire(),
                full.report.to_wire(),
                "{name}/{target}: block-memoized search reported different measurements"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for random (app, target, policy, ν, threshold) draws,
    /// the block-memoized pipeline and the full pipeline agree byte-for-
    /// byte on C and bit-for-bit on the Report.
    #[test]
    fn random_specs_are_memo_invariant(
        app_idx in 0usize..7,
        target_idx in 0usize..4,
        policy_idx in 0usize..2,
        nu_idx in 0usize..3,
        threshold in 0usize..600,
    ) {
        let (name, program) = paper_apps().swap_remove(app_idx);
        let target = Target::ALL[target_idx % Target::ALL.len()];
        let policy = Policy::ALL[policy_idx % Policy::ALL.len()];
        let widths = target.widths();
        let nu = widths[nu_idx % widths.len()];
        let spec = VariantSpec { policy, nu, loop_threshold: threshold };
        let memo = generate_with_spec(&program, spec, &opts_with_memo(target, true)).unwrap();
        let full = generate_with_spec(&program, spec, &opts_with_memo(target, false)).unwrap();
        prop_assert_eq!(
            &memo.c_code, &full.c_code,
            "{}/{}/nu{}/{}/t{}: block memo changed the emitted C",
            name, target, nu, policy, threshold
        );
        prop_assert_eq!(
            memo.report.to_wire(), full.report.to_wire(),
            "{}/{}/nu{}/{}/t{}: block memo changed the Report",
            name, target, nu, policy, threshold
        );
    }
}
