//! Golden C snapshots per target, and the cross-target acceptance
//! criteria of the retargetable-backend refactor:
//!
//! * the emitted source for a pinned potrf8 variant is byte-stable per
//!   target (scalar / SSE2 / AVX2 / AVX2+FMA) — `tests/snapshots/`;
//! * each target's output contains/omits the fused-multiply intrinsic
//!   family as appropriate (potrf's updates contract to
//!   `_mm256_fnmadd_pd`, the `c - a*b` form);
//! * on `Avx2Fma` the contraction pass strictly reduces modeled cycles
//!   vs. `Avx2` on potrf16 and kf8 (the machines differ only in FMA, so
//!   the delta isolates contraction);
//! * `generate()` on the default target is the AVX2 target — unchanged
//!   historical behavior.

use slingen::{apps, generate_with_spec, Options, Target, VariantSpec};
use slingen_synth::Policy;

/// The pinned variant each snapshot was generated from: Lazy policy at
/// the target's widest ν, loop threshold 64.
fn snapshot_generated(target: Target) -> slingen::Generated {
    let opts = Options::for_target(target);
    let spec = VariantSpec { policy: Policy::Lazy, nu: target.max_width(), loop_threshold: 64 };
    generate_with_spec(&apps::potrf(8), spec, &opts).expect("potrf8 generates")
}

fn snapshot_path(target: Target) -> String {
    // the test is attached to crates/core; snapshots live at the repo root
    format!("{}/../../tests/snapshots/potrf8_{target}.c", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn potrf8_c_is_byte_stable_per_target() {
    for target in Target::ALL {
        let want = std::fs::read_to_string(snapshot_path(target))
            .unwrap_or_else(|e| panic!("missing snapshot for {target}: {e}"));
        let got = snapshot_generated(target).c_code;
        assert_eq!(
            got, want,
            "{target}: emitted C drifted from tests/snapshots/potrf8_{target}.c — if the \
             change is intentional, regenerate the snapshot and note it in the PR"
        );
    }
}

#[test]
fn snapshots_use_the_right_intrinsic_families() {
    let scalar = std::fs::read_to_string(snapshot_path(Target::Scalar)).unwrap();
    assert!(!scalar.contains("_mm"), "scalar target must not use intrinsics");
    assert!(!scalar.contains("fma("), "no contraction on a non-FMA target");

    let sse2 = std::fs::read_to_string(snapshot_path(Target::Sse2)).unwrap();
    assert!(sse2.contains("_mm_") && !sse2.contains("_mm256"), "sse2 is the 128-bit family");
    assert!(!sse2.contains("maskload") && !sse2.contains("maskstore"), "no masked mem on SSE2");
    assert!(!sse2.contains("_mm_blend_pd"), "no immediate blends on SSE2");
    assert!(!sse2.contains("fmadd") && !sse2.contains("fmsub"), "no FMA on SSE2");

    let avx2 = std::fs::read_to_string(snapshot_path(Target::Avx2)).unwrap();
    assert!(avx2.contains("_mm256_"), "avx2 is the 256-bit family");
    assert!(
        !avx2.contains("fmadd") && !avx2.contains("fnmadd") && !avx2.contains("fmsub"),
        "the default target must omit every fused form"
    );

    let fma = std::fs::read_to_string(snapshot_path(Target::Avx2Fma)).unwrap();
    assert!(
        fma.contains("_mm256_fnmadd_pd"),
        "potrf's c - a*b updates must contract to fnmadd on the FMA target"
    );
}

/// The headline acceptance criterion: with otherwise-identical cost
/// tables, turning on FMA (and with it the contraction pass) strictly
/// reduces the tuned modeled cycle count on potrf16 and kf8.
#[test]
fn avx2fma_strictly_beats_avx2_on_potrf16_and_kf8() {
    for (name, program) in [("potrf16", apps::potrf(16)), ("kf8", apps::kf(8))] {
        let base = slingen::generate(&program, &Options::for_target(Target::Avx2)).unwrap();
        let fused = slingen::generate(&program, &Options::for_target(Target::Avx2Fma)).unwrap();
        assert!(
            fused.report.cycles < base.report.cycles,
            "{name}: Avx2Fma ({}) must strictly beat Avx2 ({})",
            fused.report.cycles,
            base.report.cycles
        );
        let mut fmas = 0usize;
        fused.function.for_each_instr(&mut |i| {
            if matches!(i, slingen_cir::Instr::SFma { .. } | slingen_cir::Instr::VFma { .. }) {
                fmas += 1;
            }
        });
        assert!(fmas > 0, "{name}: the FMA winner must actually contain fused instructions");
        let mut base_fmas = 0usize;
        base.function.for_each_instr(&mut |i| {
            if matches!(i, slingen_cir::Instr::SFma { .. } | slingen_cir::Instr::VFma { .. }) {
                base_fmas += 1;
            }
        });
        assert_eq!(base_fmas, 0, "{name}: the non-FMA target must never emit fused instructions");
    }
}

/// `Options::default()` is the AVX2 target: same machine, same search
/// space, same winner — the pre-refactor behavior is the default path.
#[test]
fn default_options_are_the_avx2_target() {
    let d = Options::default();
    assert_eq!(d.target, Target::Avx2);
    assert_eq!(d.nu, 4);
    let p = apps::potrf(8);
    let a = slingen::generate(&p, &Options::default()).unwrap();
    let b = slingen::generate(&p, &Options::for_target(Target::Avx2)).unwrap();
    assert_eq!(a.c_code, b.c_code);
    assert_eq!(a.spec, b.spec);
    assert_eq!(a.report.cycles, b.report.cycles);
}

/// The ν axis of the search space is derived from the target's widths: a
/// Scalar target never explores vector variants, SSE2 stops at ν = 2.
#[test]
fn search_space_nu_axis_follows_target_widths() {
    for (target, max_nu) in
        [(Target::Scalar, 1), (Target::Sse2, 2), (Target::Avx2, 4), (Target::Avx2Fma, 4)]
    {
        let opts = Options::for_target(target);
        let specs = opts.search.enumerate(opts.target, opts.nu);
        assert!(!specs.is_empty());
        for spec in &specs {
            assert!(
                target.supports_width(spec.nu),
                "{target}: spec ν={} outside the target's widths",
                spec.nu
            );
        }
        assert_eq!(specs.iter().map(|s| s.nu).max().unwrap(), max_nu, "{target}");
        let g = slingen::generate(&apps::potrf(6), &opts).unwrap();
        assert!(g.spec.nu <= max_nu, "{target}: winner ν={} too wide", g.spec.nu);
    }
}

/// The tuning cache keys on the target: the same program generated for
/// two targets through one shared cache yields two distinct entries.
#[test]
fn tune_cache_distinguishes_targets() {
    let p = apps::potrf(6);
    let avx2 = Options::for_target(Target::Avx2);
    let fma = Options { cache: avx2.cache.clone(), ..Options::for_target(Target::Avx2Fma) };
    let g1 = slingen::generate(&p, &avx2).unwrap();
    assert!(!g1.tuning.cache_hit);
    let g2 = slingen::generate(&p, &fma).unwrap();
    assert!(!g2.tuning.cache_hit, "a different target must miss the cache");
    assert_eq!(avx2.cache.len(), 2);
    // and each replays its own artifact
    assert!(slingen::generate(&p, &avx2).unwrap().tuning.cache_hit);
    assert!(slingen::generate(&p, &fma).unwrap().tuning.cache_hit);
}
