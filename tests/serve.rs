//! Concurrency and serve-front-end suite: N threads over one shared
//! cache must run exactly one search per unique kernel, waiters must
//! receive byte-identical artifacts, and the line protocol must answer
//! every request with exactly one well-formed response.

use slingen::serve::{serve_lines, Engine};
use slingen::{apps, Options, Target, TuneCache};
use std::sync::Barrier;

/// K threads racing on the *same* kernel: exactly one search runs; the
/// other K−1 requests are served as hits or coalesced waiters; every
/// thread gets C byte-identical to a single-threaded reference run.
#[test]
fn concurrent_identical_requests_run_one_search() {
    const K: usize = 8;
    let reference = slingen::generate(&apps::potrf(6), &Options::default()).unwrap();
    let cache = TuneCache::new();
    let barrier = Barrier::new(K);
    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                s.spawn(|| {
                    let opts = Options { cache: cache.clone(), ..Options::default() };
                    barrier.wait();
                    slingen::generate(&apps::potrf(6), &opts).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(cache.searches(), 1, "exactly one search for one unique key");
    let totals = cache.totals();
    assert_eq!(totals.misses, 1);
    assert_eq!(totals.hits + totals.coalesced, (K - 1) as u64);
    assert_eq!(totals.entries, 1);
    for g in &results {
        assert_eq!(g.c_code, reference.c_code, "every thread sees the reference artifact");
        assert_eq!(g.spec, reference.spec);
    }
    let served_cold = results.iter().filter(|g| !g.tuning.cache_hit).count();
    assert_eq!(served_cold, 1, "exactly one caller observed the cold search");
}

/// K threads on K *distinct* kernels: one search each, no coalescing,
/// and each artifact matches its own single-threaded run.
#[test]
fn concurrent_distinct_requests_search_once_each() {
    const K: usize = 8;
    let cache = TuneCache::new();
    let barrier = Barrier::new(K);
    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|i| {
                let cache = cache.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    let opts = Options { cache, ..Options::default() };
                    barrier.wait();
                    (i, slingen::generate(&apps::potrf(3 + i), &opts).unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(cache.searches(), K as u64);
    assert_eq!(cache.len(), K);
    assert_eq!(cache.totals().coalesced, 0);
    for (i, g) in &results {
        let solo = slingen::generate(&apps::potrf(3 + i), &Options::default()).unwrap();
        assert_eq!(g.c_code, solo.c_code, "potrf({}) must match its solo run", 3 + i);
    }
    // per-shard counters reconcile with the totals
    let by_shard: u64 = cache.shard_stats().iter().map(|s| s.misses).sum();
    assert_eq!(by_shard, cache.totals().misses);
}

/// A save/load cycle of a concurrently built cache replays every entry.
#[test]
fn concurrently_built_cache_round_trips() {
    const K: usize = 4;
    let cache = TuneCache::new();
    std::thread::scope(|s| {
        for i in 0..K {
            let cache = cache.clone();
            s.spawn(move || {
                let opts = Options { cache, ..Options::default() };
                slingen::generate(&apps::trtri(3 + i), &opts).unwrap();
            });
        }
    });
    let path =
        std::env::temp_dir().join(format!("slingen-serve-test-{}-roundtrip", std::process::id()));
    assert_eq!(cache.save(&path).unwrap(), K);
    let loaded = TuneCache::load_checked(&path).unwrap();
    let replay = Options { cache: loaded.clone(), ..Options::default() };
    for i in 0..K {
        let g = slingen::generate(&apps::trtri(3 + i), &replay).unwrap();
        assert!(g.tuning.cache_hit && g.tuning.persisted, "trtri({}) must replay", 3 + i);
    }
    assert_eq!(loaded.searches(), 0);
    let _ = std::fs::remove_file(&path);
}

/// The engine's line protocol: well-formed responses, cache markers that
/// progress miss → hit, summary mode omitting the C payload.
#[test]
fn engine_line_protocol() {
    let engine = Engine::new(TuneCache::new(), Target::Avx2);
    let first = engine.handle_line(r#"{"id":1,"app":"potrf","n":4}"#);
    assert!(first.contains("\"id\":1"), "{first}");
    assert!(first.contains("\"ok\":true"), "{first}");
    assert!(first.contains("\"cache\":\"miss\""), "{first}");
    assert!(first.contains("\"c\":\""), "{first}");
    assert!(first.contains("void potrf"), "{first}");

    let second = engine.handle_line(r#"{"id":2,"app":"potrf","n":4}"#);
    assert!(second.contains("\"cache\":\"hit\""), "{second}");

    let summary = engine.handle_line(r#"{"id":3,"app":"potrf","n":4,"emit":"summary"}"#);
    assert!(summary.contains("\"winner\":\""), "{summary}");
    assert!(summary.contains("\"cycles\":"), "{summary}");
    assert!(!summary.contains("\"c\":"), "summary must omit the code: {summary}");

    // kf with an explicit observation count is a distinct kernel
    let kf = engine.handle_line(r#"{"id":4,"app":"kf","n":4,"k":2,"emit":"summary"}"#);
    assert!(kf.contains("\"ok\":true"), "{kf}");
    let kf2 = engine.handle_line(r#"{"id":5,"app":"kf","n":4,"k":2,"emit":"summary"}"#);
    assert!(kf2.contains("\"cache\":\"hit\""), "{kf2}");

    // errors are responses, not crashes
    for bad in [
        "this is not json",
        r#"{"id":6,"app":"gemm","n":4}"#,
        r#"{"id":7,"app":"potrf","n":1000}"#,
        r#"{"id":8,"app":"potrf"}"#,
    ] {
        let resp = engine.handle_line(bad);
        assert!(resp.contains("\"ok\":false"), "{bad} -> {resp}");
        assert!(resp.contains("\"error\":\""), "{bad} -> {resp}");
    }
    assert_eq!(engine.cache().searches(), 2, "potrf(4) and kf(4,2)");
}

/// `serve_lines` pumps a whole stream through the worker pool: one
/// response line per request, all ids answered, errors counted.
#[test]
fn serve_lines_answers_every_request() {
    let engine = Engine::new(TuneCache::new(), Target::Avx2);
    let input = r#"{"id":10,"app":"potrf","n":4,"emit":"summary"}
{"id":11,"app":"potrf","n":4,"emit":"summary"}

{"id":12,"app":"trtri","n":4,"emit":"summary"}
{"id":13,"app":"nope","n":4}
{"id":14,"app":"potrf","n":4,"emit":"summary"}
"#;
    let mut out = Vec::new();
    let summary = serve_lines(&engine, input.as_bytes(), &mut out, 4).unwrap();
    assert_eq!(summary.requests, 5, "blank lines are skipped");
    assert_eq!(summary.errors, 1);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<_> = text.lines().collect();
    assert_eq!(lines.len(), 5, "one response line per request:\n{text}");
    for id in [10, 11, 12, 13, 14] {
        assert!(text.contains(&format!("\"id\":{id}")), "id {id} unanswered:\n{text}");
    }
    // the three potrf(4) requests ran exactly one search among them
    assert_eq!(engine.cache().searches(), 2, "potrf(4) and trtri(4)");
}
