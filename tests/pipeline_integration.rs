//! Cross-crate integration: the full SLinGen pipeline on every benchmark,
//! validated against the BLAS/LAPACK substrate, across widths and sizes.

use slingen::{apps, generate_with_policy, Options};
use slingen_blas::{testgen, Uplo};
use slingen_ir::OpId;
use slingen_lgen::BufferMap;
use slingen_synth::Policy;
use slingen_vm::{BufferSet, NullMonitor};

/// Run generated code for `program` on given inputs; return all buffers.
fn execute(
    program: &slingen_ir::Program,
    nu: usize,
    policy: Policy,
    inputs: &[(OpId, Vec<f64>)],
) -> Vec<Vec<f64>> {
    let opts = Options { nu, policy: Some(policy), ..Options::default() };
    let g = generate_with_policy(program, policy, &opts).expect("generate");
    let mut fb = slingen_cir::FunctionBuilder::new("probe", nu);
    let map = BufferMap::build(program, &mut fb);
    let mut bufs = BufferSet::for_function(&g.function);
    for (op, data) in inputs {
        bufs.set(map.buf(*op), data);
    }
    slingen_vm::execute(&g.function, &mut bufs, &mut NullMonitor).expect("vm");
    (0..program.operands().len()).map(|i| bufs.get(map.buf(OpId(i))).to_vec()).collect()
}

#[test]
fn potrf_matches_lapack_across_widths_and_sizes() {
    for &n in &[4usize, 9, 16, 24] {
        for &nu in &[1usize, 2, 4] {
            for policy in Policy::ALL {
                let p = apps::potrf(n);
                let s = p.find("S").unwrap();
                let u = p.find("U").unwrap();
                let spd = testgen::spd(n, 1000 + n as u64);
                let outs = execute(&p, nu, policy, &[(s, spd.as_slice().to_vec())]);
                let mut expect = spd.as_slice().to_vec();
                slingen_blas::dpotrf(Uplo::Upper, n, &mut expect, n);
                for i in 0..n {
                    for j in i..n {
                        assert!(
                            (outs[u.0][i * n + j] - expect[i * n + j]).abs() < 1e-9,
                            "potrf n={n} nu={nu} {policy} ({i},{j})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn trsyl_matches_reference() {
    for &n in &[4usize, 12, 20] {
        let p = apps::trsyl(n);
        let (l, u, c, x) = (
            p.find("L").unwrap(),
            p.find("U").unwrap(),
            p.find("C").unwrap(),
            p.find("X").unwrap(),
        );
        let lt = testgen::well_conditioned_triangular(n, Uplo::Lower, 2000);
        let ut = testgen::well_conditioned_triangular(n, Uplo::Upper, 2001);
        let rhs = testgen::general(n, n, 2002);
        let outs = execute(
            &p,
            4,
            Policy::Eager,
            &[
                (l, lt.as_slice().to_vec()),
                (u, ut.as_slice().to_vec()),
                (c, rhs.as_slice().to_vec()),
            ],
        );
        let mut expect = rhs.as_slice().to_vec();
        slingen_blas::dtrsyl(n, n, lt.as_slice(), n, ut.as_slice(), n, &mut expect, n);
        let diff = outs[x.0].iter().zip(&expect).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(diff < 1e-9, "trsyl n={n}: {diff}");
    }
}

#[test]
fn kalman_filter_matches_blas_reference() {
    // a fully independent reference built from the BLAS substrate
    let n = 8;
    let p = apps::kf(n);
    let inputs = slingen::workload::inputs(&p, 4242);
    let outs = execute(&p, 4, Policy::Lazy, &inputs);
    let get = |name: &str| -> Vec<f64> {
        let op = p.find(name).unwrap();
        inputs
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, d)| d.clone())
            .unwrap_or_else(|| outs[op.0].clone())
    };
    let (f, bb, q, h, r, pm) = (get("F"), get("B"), get("Q"), get("H"), get("R"), get("P"));
    let (u_in, x, z) = (get("u"), get("x"), get("z"));
    use slingen_blas::{dgemm, Trans};
    let mm = |a: &[f64], bt: Trans, b: &[f64], m: usize, nn: usize, k: usize| -> Vec<f64> {
        let mut c = vec![0.0; m * nn];
        dgemm(
            Trans::No,
            bt,
            m,
            nn,
            k,
            1.0,
            a,
            k,
            b,
            if bt == Trans::No { nn } else { k },
            0.0,
            &mut c,
            nn,
        );
        c
    };
    // y = F x + B u
    let mut y = vec![0.0; n];
    slingen_blas::dgemv(Trans::No, n, n, 1.0, &f, n, &x, 0.0, &mut y);
    let mut bu = vec![0.0; n];
    slingen_blas::dgemv(Trans::No, n, n, 1.0, &bb, n, &u_in, 0.0, &mut bu);
    for i in 0..n {
        y[i] += bu[i];
    }
    // Y = F P F' + Q
    let fp = mm(&f, Trans::No, &pm, n, n, n);
    let mut ymat = mm(&fp, Trans::Yes, &f, n, n, n);
    for i in 0..n * n {
        ymat[i] += q[i];
    }
    // v0 = z - H y
    let mut v0 = z.clone();
    let mut hy = vec![0.0; n];
    slingen_blas::dgemv(Trans::No, n, n, 1.0, &h, n, &y, 0.0, &mut hy);
    for i in 0..n {
        v0[i] -= hy[i];
    }
    // M1 = H Y ; M2 = Y H' ; M3 = M1 H' + R
    let m1 = mm(&h, Trans::No, &ymat, n, n, n);
    let m2 = mm(&ymat, Trans::Yes, &h, n, n, n);
    let mut m3 = mm(&m1, Trans::Yes, &h, n, n, n);
    for i in 0..n * n {
        m3[i] += r[i];
    }
    // U'U = M3 ; solves
    let mut uu = m3.clone();
    slingen_blas::dpotrf(Uplo::Upper, n, &mut uu, n);
    let mut v1 = v0.clone();
    slingen_blas::dtrsv(Uplo::Upper, Trans::Yes, slingen_blas::Diag::NonUnit, n, &uu, n, &mut v1);
    let mut v2 = v1.clone();
    slingen_blas::dtrsv(Uplo::Upper, Trans::No, slingen_blas::Diag::NonUnit, n, &uu, n, &mut v2);
    let mut m4 = m1.clone();
    slingen_blas::dtrsm(
        slingen_blas::Side::Left,
        Uplo::Upper,
        Trans::Yes,
        slingen_blas::Diag::NonUnit,
        n,
        n,
        1.0,
        &uu,
        n,
        &mut m4,
        n,
    );
    let mut m5 = m4.clone();
    slingen_blas::dtrsm(
        slingen_blas::Side::Left,
        Uplo::Upper,
        Trans::No,
        slingen_blas::Diag::NonUnit,
        n,
        n,
        1.0,
        &uu,
        n,
        &mut m5,
        n,
    );
    // x_out = y + M2 v2 ; P_out = Y - M2 M5
    let mut x_out = y.clone();
    let mut m2v2 = vec![0.0; n];
    slingen_blas::dgemv(Trans::No, n, n, 1.0, &m2, n, &v2, 0.0, &mut m2v2);
    for i in 0..n {
        x_out[i] += m2v2[i];
    }
    let m2m5 = mm(&m2, Trans::No, &m5, n, n, n);
    let mut p_out = ymat.clone();
    for i in 0..n * n {
        p_out[i] -= m2m5[i];
    }

    let got_x = &outs[p.find("x_out").unwrap().0];
    let got_p = &outs[p.find("P_out").unwrap().0];
    for i in 0..n {
        assert!((got_x[i] - x_out[i]).abs() < 1e-8, "x_out[{i}]: {} vs {}", got_x[i], x_out[i]);
    }
    for i in 0..n * n {
        assert!((got_p[i] - p_out[i]).abs() < 1e-8, "P_out[{i}]: {} vs {}", got_p[i], p_out[i]);
    }
}

#[test]
fn generated_c_is_emitted_for_all_benchmarks() {
    for (name, p) in [
        ("potrf", apps::potrf(8)),
        ("trsyl", apps::trsyl(6)),
        ("kf", apps::kf(4)),
        ("gpr", apps::gpr(4)),
        ("l1a", apps::l1a(8)),
    ] {
        let g = slingen::generate(&p, &Options::default()).unwrap();
        assert!(g.c_code.contains(&format!("void {name}")), "{name}");
        assert!(g.c_code.contains("restrict"), "{name}");
    }
}
